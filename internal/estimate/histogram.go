package estimate

import (
	"fmt"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
)

// Histogram is the classic equi-width column histogram — the estimation
// baseline Section 5 argues against: "It fully depends on costly data
// rescans for histogram maintenance, and it can only be used for
// range-producing restrictions. But even for range estimates,
// histograms fail to detect small ranges falling below granularity."
//
// The three drawbacks are all observable here: Build scans the whole
// index (and charges the I/O), the histogram goes stale as the table
// changes (BuiltRows records what it saw), and EstimateRange cannot
// resolve anything smaller than a bucket.
type Histogram struct {
	// Lo and Hi bound the numeric key domain seen at build time.
	Lo, Hi float64
	// Counts holds per-bucket entry counts over [Lo, Hi).
	Counts []int64
	// Total is the number of entries seen at build time.
	Total int64
	// BuildCost is the I/O charged by the build scan.
	BuildCost int64
}

// BuildHistogram scans the index's leading numeric column into an
// equi-width histogram with the given number of buckets.
func BuildHistogram(ix *catalog.Index, buckets int) (*Histogram, error) {
	if buckets <= 0 {
		buckets = 100
	}
	leadType := ix.Table.Columns[ix.LeadingCol()].Type
	if leadType != expr.TypeInt && leadType != expr.TypeFloat {
		return nil, fmt.Errorf("estimate: histogram needs a numeric leading column, got %s", leadType)
	}
	pool := ix.Table.Pool()
	before := pool.Stats().IOCost()
	// First pass: find the domain. Second pass: fill buckets. (A real
	// system would persist and maintain it; the double scan is exactly
	// the "costly data rescans" the paper complains about.)
	var vals []float64
	cur, err := ix.Tree.Seek(nil, nil)
	if err != nil {
		return nil, err
	}
	types := ix.KeyTypes()
	for {
		key, _, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		row, err := expr.DecodeKey(key, types)
		if err != nil {
			return nil, err
		}
		f, _ := row[0].AsFloat()
		vals = append(vals, f)
	}
	h := &Histogram{Counts: make([]int64, buckets)}
	if len(vals) == 0 {
		h.BuildCost = pool.Stats().IOCost() - before
		return h, nil
	}
	h.Lo, h.Hi = vals[0], vals[len(vals)-1]
	if h.Hi <= h.Lo {
		h.Hi = h.Lo + 1
	}
	width := (h.Hi - h.Lo) / float64(buckets)
	for _, v := range vals {
		b := int((v - h.Lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= buckets {
			b = buckets - 1
		}
		h.Counts[b]++
		h.Total++
	}
	h.BuildCost = pool.Stats().IOCost() - before
	return h, nil
}

// EstimateRange estimates the entries in rg by summing full buckets and
// linearly interpolating the partial edge buckets — the standard
// histogram assumption of uniformity within a bucket, which is what
// makes sub-bucket ranges invisible.
func (h *Histogram) EstimateRange(rg expr.Range) float64 {
	if h.Total == 0 {
		return 0
	}
	lo := h.Lo
	if rg.Lo.Present {
		if f, ok := rg.Lo.Value.AsFloat(); ok {
			lo = f
		}
	}
	hi := h.Hi
	if rg.Hi.Present {
		if f, ok := rg.Hi.Value.AsFloat(); ok {
			hi = f
		}
	}
	if hi <= lo {
		return 0
	}
	if lo < h.Lo {
		lo = h.Lo
	}
	if hi > h.Hi {
		hi = h.Hi
	}
	buckets := len(h.Counts)
	width := (h.Hi - h.Lo) / float64(buckets)
	var est float64
	for b := 0; b < buckets; b++ {
		bLo := h.Lo + float64(b)*width
		bHi := bLo + width
		oLo, oHi := lo, hi
		if bLo > oLo {
			oLo = bLo
		}
		if bHi < oHi {
			oHi = bHi
		}
		if oHi > oLo {
			est += float64(h.Counts[b]) * (oHi - oLo) / width
		}
	}
	return est
}
