package estimate

import (
	"math"
	"testing"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

func intRange(a, b int64) expr.Range {
	return expr.Range{
		Lo: expr.Bound{Value: expr.Int(a), Inclusive: true, Present: true},
		Hi: expr.Bound{Value: expr.Int(b), Present: true},
	}
}

func TestHistogramAccurateOnWideRanges(t *testing.T) {
	tb, ageIx, _ := buildTable(t, 20000) // AGE uniform [0,100)
	h, err := BuildHistogram(ageIx, 50)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != tb.Cardinality() {
		t.Fatalf("total = %d, want %d", h.Total, tb.Cardinality())
	}
	// Wide ranges estimate well under uniformity.
	got := h.EstimateRange(intRange(20, 60))
	want := float64(tb.Cardinality()) * 0.4
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("wide range estimate %v, want ~%v", got, want)
	}
}

func TestHistogramBuildIsCostly(t *testing.T) {
	_, ageIx, _ := buildTable(t, 20000)
	pool := ageIx.Table.Pool()
	pool.EvictAll()
	h, err := BuildHistogram(ageIx, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The build scans every leaf: orders of magnitude more I/O than a
	// descent estimate (which costs ~height).
	if h.BuildCost < int64(10*ageIx.Tree.Height()) {
		t.Fatalf("build cost %d suspiciously low", h.BuildCost)
	}
}

func TestHistogramMissesSubBucketRanges(t *testing.T) {
	// The paper: "histograms fail to detect small ranges falling below
	// granularity". One bucket of a 10-bucket histogram over [0,100)
	// spans 10 ages; a 1-age point range is estimated at bucket/10
	// regardless of the true count, while the descent estimator counts
	// the leaf exactly.
	_, ageIx, _ := buildTable(t, 20000)
	h, err := BuildHistogram(ageIx, 10)
	if err != nil {
		t.Fatal(err)
	}
	rg := intRange(42, 43)
	lo, hi := rg.EncodedBounds()
	truth, err := ageIx.Tree.CountRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	histEst := h.EstimateRange(rg)
	descent, _, err := ageIx.Tree.EstimateRangeRefined(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	// The histogram answers the bucket average — its error is the
	// uniformity assumption. The descent answer is leaf-exact here.
	if descent != float64(truth) {
		t.Fatalf("descent %v, truth %d", descent, truth)
	}
	// Prove the histogram cannot distinguish a 1-age from a 5-age
	// range any better than linear interpolation.
	r5 := h.EstimateRange(intRange(40, 45))
	if math.Abs(histEst*5-r5) > r5*0.01 {
		t.Fatalf("histogram resolves sub-bucket structure it cannot see: %v vs %v", histEst*5, r5)
	}
}

func TestHistogramGoesStale(t *testing.T) {
	tb, ageIx, _ := buildTable(t, 5000)
	h, err := BuildHistogram(ageIx, 50)
	if err != nil {
		t.Fatal(err)
	}
	before := h.EstimateRange(intRange(0, 100))
	// The table doubles; the histogram doesn't notice, the tree does.
	for i := 0; i < 5000; i++ {
		if _, err := tb.Insert(expr.Row{expr.Int(int64(90000 + i)), expr.Int(int64(i % 100)), expr.Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	after := h.EstimateRange(intRange(0, 100))
	if before != after {
		t.Fatal("stale histogram should not change")
	}
	rg := intRange(0, 100)
	lo, hi := rg.EncodedBounds()
	fresh, _, err := ageIx.Tree.EstimateRangeRefined(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if fresh < 1.5*after {
		t.Fatalf("tree estimate %v should reflect the doubled table (histogram stuck at %v)", fresh, after)
	}
}

func TestHistogramRejectsNonNumeric(t *testing.T) {
	tb, _, _ := buildTable(t, 10)
	if _, err := BuildHistogram(tb.Indexes[0], 10); err != nil {
		t.Fatalf("numeric build failed: %v", err)
	}
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(2048), 0))
	st, err := cat.CreateTable("S", []catalog.Column{{Name: "NAME", Type: expr.TypeString}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := st.CreateIndex("NAME_IX", "NAME")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildHistogram(ix, 10); err == nil {
		t.Fatal("string-keyed histogram accepted")
	}
}

func TestHistogramEmptyAndEdges(t *testing.T) {
	_, ageIx, _ := buildTable(t, 1000)
	h, err := BuildHistogram(ageIx, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.EstimateRange(intRange(500, 600)); got != 0 {
		t.Fatalf("out-of-domain range = %v", got)
	}
	if got := h.EstimateRange(intRange(50, 50)); got != 0 {
		t.Fatalf("empty range = %v", got)
	}
	full := h.EstimateRange(expr.FullRange())
	if math.Abs(full-float64(h.Total)) > float64(h.Total)/10 {
		t.Fatalf("full range = %v, total %d", full, h.Total)
	}
}
