// Package estimate implements the initial estimation stage of the
// paper's Section 5 plus the I/O cost model shared by the static and
// dynamic optimizers.
//
// For every index usable by a query, the restriction is reduced to a
// range on the index's leading column and the B-tree itself is used as
// a hierarchical histogram via the descent-to-split-node method. The
// indexes are then arranged in ascending estimated-RID order — the order
// Jscan wants to scan them in. The stage honors the paper's
// cost-control techniques:
//
//   - indexes are pre-arranged in the most probable ascending order
//     (the caller passes the previous retrieval's winning order);
//   - discovery of a very short range terminates estimation immediately;
//   - discovery of an empty range cancels all retrieval stages — the
//     caller delivers "end of data" at once.
package estimate

import (
	"math"
	"math/rand"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// IndexEstimate is the initial-stage appraisal of one index.
type IndexEstimate struct {
	Index *catalog.Index
	// Lo and Hi are the encoded scan bounds the restriction imposes on
	// the index (composite prefixes included); nil = open side.
	Lo, Hi []byte
	// Sargable is how many conjuncts contributed to the bounds; 0
	// means the index gets no restriction (its scan would read
	// everything).
	Sargable int
	// RIDs is the estimated number of matching index entries.
	RIDs float64
	// Exact is true when the descent reached a leaf and RIDs is exact.
	Exact bool
	// Corrected is true when RIDs was scaled by a feedback correction
	// factor (Options.Correction).
	Corrected bool
	// Empty is true when the range is provably empty.
	Empty bool
	// EstimateCost is the I/O charged while producing this estimate.
	EstimateCost int64
}

// Selectivity returns the estimated fraction of table rows matched.
func (e IndexEstimate) Selectivity() float64 {
	c := e.Index.Table.Cardinality()
	if c == 0 {
		return 0
	}
	s := e.RIDs / float64(c)
	if s > 1 {
		s = 1
	}
	return s
}

// Options tunes the initial stage.
type Options struct {
	// ShortRange stops further estimation once an exact estimate at or
	// below this many RIDs is found (paper: "If a very short range is
	// discovered ... the initial stage estimation terminates
	// immediately to save on estimation cost").
	ShortRange int
	// PreviousOrder, if non-nil, gives index names in the order the
	// previous retrieval found optimal; estimation probes them in that
	// order ("The freshly (and optimally) reordered indexes are used
	// for the next retrieval estimates as a starting point").
	PreviousOrder []string
	// Governor, if non-nil, is the query's cancellation/budget
	// authority: estimation descents charge it and abort once it trips.
	Governor *storage.Governor
	// Correction, if non-nil, returns a multiplicative cardinality
	// correction factor for an index name — the feedback loop's learned
	// actual/estimated ratio. It adjusts inexact (extrapolated)
	// estimates only: an exact leaf count needs no correction. Nil
	// keeps the stage purely structural (the paper's behavior).
	Correction func(index string) float64
}

// DefaultOptions returns the standard initial-stage tuning.
func DefaultOptions() Options { return Options{ShortRange: 20} }

// Result is the outcome of the initial stage.
type Result struct {
	// Estimates holds appraised indexes in ascending estimated-RID
	// order. When estimation stopped early (short range), unprobed
	// indexes appear after probed ones, unappraised (RIDs = NaN is not
	// used; they carry Sargable counts but Probed=false).
	Estimates []IndexEstimate
	// EmptyRange is true when some index proves the restriction can
	// match nothing: the entire retrieval is canceled.
	EmptyRange bool
	// Shortcut is true when estimation stopped early on a short range.
	Shortcut bool
	// TotalCost is the I/O spent on estimation.
	TotalCost int64
}

// Appraise runs the initial stage over the given indexes for a
// restriction under bindings.
func Appraise(indexes []*catalog.Index, restriction expr.Expr, binds expr.Bindings, opts Options) (Result, error) {
	if opts.ShortRange <= 0 {
		opts.ShortRange = 20
	}
	ordered := reorder(indexes, opts.PreviousOrder)
	var res Result
	for _, ix := range ordered {
		e, err := appraiseOne(ix, restriction, binds, opts.Governor)
		if err != nil {
			return Result{}, err
		}
		if opts.Correction != nil && !e.Exact && !e.Empty && e.RIDs > 0 {
			if f := opts.Correction(ix.Name); f > 0 && f != 1 {
				e.RIDs *= f
				e.Corrected = true
			}
		}
		res.TotalCost += e.EstimateCost
		res.Estimates = append(res.Estimates, e)
		if e.Empty {
			res.EmptyRange = true
			return res, nil
		}
		if e.Exact && e.RIDs <= float64(opts.ShortRange) {
			res.Shortcut = true
			break
		}
	}
	sortByRIDs(res.Estimates)
	return res, nil
}

func appraiseOne(ix *catalog.Index, restriction expr.Expr, binds expr.Bindings, gov *storage.Governor) (IndexEstimate, error) {
	e := IndexEstimate{Index: ix}
	var empty bool
	e.Lo, e.Hi, e.Sargable, empty = ix.RestrictionBounds(restriction, binds)
	if empty {
		e.Empty = true
		return e, nil
	}
	// The refined edge-descent estimator: leaf-exact at the range
	// boundaries, extrapolated occupancy in the interior. A private
	// tracker attributes the descent's I/O to this appraisal even while
	// other queries drive the shared pool.
	tr := storage.NewTracker(gov)
	rids, exact, err := ix.Tree.EstimateRangeRefinedTracked(e.Lo, e.Hi, tr)
	if err != nil {
		return e, err
	}
	e.EstimateCost = tr.IOCost()
	e.RIDs = rids
	e.Exact = exact
	if e.Exact && e.RIDs == 0 {
		// Exact empty: the paper's empty-range detection.
		e.Empty = true
	}
	return e, nil
}

// reorder arranges indexes so that names in prev come first, in prev's
// order; the rest keep their original order.
func reorder(indexes []*catalog.Index, prev []string) []*catalog.Index {
	if len(prev) == 0 {
		return indexes
	}
	out := make([]*catalog.Index, 0, len(indexes))
	used := make(map[string]bool, len(indexes))
	for _, name := range prev {
		for _, ix := range indexes {
			if ix.Name == name && !used[name] {
				out = append(out, ix)
				used[name] = true
			}
		}
	}
	for _, ix := range indexes {
		if !used[ix.Name] {
			out = append(out, ix)
		}
	}
	return out
}

// sortByRIDs sorts ascending by estimated RIDs (stable for ties).
func sortByRIDs(es []IndexEstimate) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].RIDs < es[j-1].RIDs; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// SampleSelectivity estimates the selectivity of an arbitrary
// restriction over the key columns of an index by ranked random
// sampling within the index's range — the role of the [Ant92] sampler:
// "Random sampling can estimate RIDs with any restrictions, including
// pattern matching, complex arithmetic, comparing attributes of the
// same index."
//
// It draws up to samples entries from rng within rg, decodes them, and
// evaluates restriction on the key columns. The returned estimate is
// rangeCount * matchFraction.
func SampleSelectivity(ix *catalog.Index, rg expr.Range, restriction expr.Expr, binds expr.Bindings, rng *rand.Rand, samples int) (rids float64, err error) {
	lo, hi := rg.EncodedBounds()
	keys, _, count, err := ix.Tree.SampleRange(rng, lo, hi, samples)
	if err != nil {
		return 0, err
	}
	if count == 0 {
		return 0, nil
	}
	if len(keys) == 0 {
		return float64(count), nil
	}
	match := 0
	for _, k := range keys {
		row, err := ix.DecodeEntry(k)
		if err != nil {
			return 0, err
		}
		ok, err := expr.EvalPred(restriction, row, binds)
		if err != nil {
			// Restriction touches non-key columns: sampling cannot
			// refine; report the raw range count.
			return float64(count), nil
		}
		if ok {
			match++
		}
	}
	return float64(count) * float64(match) / float64(len(keys)), nil
}

// CostModel converts cardinalities into I/O cost estimates. All costs
// are in pages (the buffer pool's currency).
type CostModel struct {
	// TablePages is the heap size in pages.
	TablePages int
	// TableRows is the heap cardinality.
	TableRows int64
	// ClusterRatio estimates how clustered an index is (1 = key order
	// equals physical order). Fetch costs interpolate between one I/O
	// per row (unclustered) and sequential page reads (clustered).
	ClusterRatio float64
}

// RowsPerPage returns the average heap rows per page.
func (m CostModel) RowsPerPage() float64 {
	if m.TablePages == 0 {
		return 1
	}
	return float64(m.TableRows) / float64(m.TablePages)
}

// TscanCost is the cost of a full sequential scan.
func (m CostModel) TscanCost() float64 { return float64(m.TablePages) }

// LeafPages estimates leaf pages touched when scanning rids index
// entries with the given average leaf occupancy.
func (m CostModel) LeafPages(rids, avgLeafEntries float64) float64 {
	if avgLeafEntries <= 0 {
		avgLeafEntries = 1
	}
	return math.Ceil(rids / avgLeafEntries)
}

// FetchCost estimates the I/O of fetching rids data records through an
// index with the model's cluster ratio, assuming fetches in key order.
// Unclustered fetches approach one page read per row (bounded by the
// Cardenas estimate of distinct pages when the list is sorted);
// clustered fetches approach sequential page reads.
func (m CostModel) FetchCost(rids float64, sorted bool) float64 {
	if rids <= 0 {
		return 0
	}
	perPage := m.RowsPerPage()
	clustered := rids / perPage
	unclustered := rids
	if sorted {
		unclustered = m.DistinctPages(rids)
	}
	c := m.ClusterRatio
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	return c*clustered + (1-c)*unclustered
}

// DistinctPages is the Cardenas estimate of distinct pages hit by rids
// random rows: P * (1 - (1 - 1/P)^rids).
func (m CostModel) DistinctPages(rids float64) float64 {
	p := float64(m.TablePages)
	if p <= 0 {
		return 0
	}
	return p * (1 - math.Pow(1-1/p, rids))
}

// SscanCost is the cost of a self-sufficient index scan over rids
// entries: the descent plus the leaf pages.
func (m CostModel) SscanCost(rids, avgLeafEntries float64, height int) float64 {
	return float64(height) + m.LeafPages(rids, avgLeafEntries)
}

// FscanCost is the classical indexed retrieval cost: index scan plus
// immediate (unsorted-order) record fetches.
func (m CostModel) FscanCost(rids, avgLeafEntries float64, height int) float64 {
	return m.SscanCost(rids, avgLeafEntries, height) + m.FetchCost(rids, false)
}

// JscanFinalCost is the projected cost of the final retrieval stage
// from a RID list of the given size: fetches in sorted RID order.
func (m CostModel) JscanFinalCost(rids float64) float64 {
	return m.FetchCost(rids, true)
}
