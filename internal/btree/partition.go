package btree

import (
	"fmt"

	"rdbdyn/internal/storage"
)

// Range partitioning for intra-query parallel index scans.
//
// PartitionRange splits a key range into leaf-aligned slices of
// near-equal entry count by ranked descent over the pseudo-ranked
// per-child counts — the same machinery CountRange and SampleRange use.
// Planning is accounting-free (loadPlanning), mirroring the readahead
// philosophy of BufferPool.Prefetch: coordination must not perturb the
// simulated cost model.
//
// The leaf alignment is what keeps parallel I/O attribution exactly
// equal to a sequential scan of the same range. A sequential cursor
// charges the descent (height pages, the last being the first leaf)
// plus one load per additional leaf: height + L - 1 charges in total.
// Partitioned, worker 0 opens with a normal tracked Seek (height
// charges, covering the shared descent) and each later worker opens
// directly on its first leaf for exactly one charge (SeekPartitionLeaf),
// so the workers together charge height + L0-1 + sum(Li) = height + L-1
// over the same multiset of pages. Had splits landed mid-leaf, the
// boundary leaf would be charged by two workers and the totals would
// drift.
//
// Interior partitions terminate by exact entry count (they own whole
// leaves, so the count runs out precisely at a leaf end and no extra
// page is touched — sequential iteration at that point simply hops into
// the next worker's first leaf). The last partition terminates on the
// range's upper bound exactly like a sequential cursor, including the
// look-ahead load of the first out-of-range leaf when the bound aligns
// with a leaf boundary.
//
// One known divergence: leaves emptied by lazy deletion that sit
// exactly at a partition boundary are hopped through (and charged) by a
// sequential scan but skipped by the partitioned one. Tables that have
// seen no deletions — all experiment workloads — cannot hit this.

// RangePartition describes one worker's slice of a partitioned range
// scan: the leaf page where the slice starts and the exact number of
// entries it owns. Partition 0 ignores Leaf and opens with a normal
// tracked Seek at the range's lower bound so the descent is charged
// once, as in a sequential scan.
type RangePartition struct {
	Leaf  storage.PageNo
	Count int64
}

// PartitionRange splits the key range [lo, hi) (nil = open) into up to
// n leaf-aligned partitions of near-equal entry count. It returns nil —
// no error — when the range does not split usefully (fewer than two
// partitions worth of leaves); callers then fall back to a sequential
// scan. Planning itself charges no I/O.
func (t *BTree) PartitionRange(lo, hi []byte, n int) ([]RangePartition, error) {
	if n < 2 {
		return nil, nil
	}
	rlo := int64(0)
	if lo != nil {
		r, err := t.rankOfKey(lo)
		if err != nil {
			return nil, err
		}
		rlo = r
	}
	rhi := t.len
	if hi != nil {
		r, err := t.rankOfKey(hi)
		if err != nil {
			return nil, err
		}
		rhi = r
	}
	total := rhi - rlo
	if total < int64(2*n) {
		return nil, nil
	}
	bounds := make([]int64, 0, n+1)        // partition boundary ranks
	leaves := make([]storage.PageNo, 0, n) // start leaf per partition (bounds[i] .. )
	bounds = append(bounds, rlo)
	leaves = append(leaves, 0) // partition 0 seeks lo; leaf unused
	for i := 1; i < n; i++ {
		target := rlo + int64(i)*total/int64(n)
		leaf, startRank, err := t.leafForRank(target)
		if err != nil {
			return nil, err
		}
		// Snap the split down to the containing leaf's first entry; skip
		// splits that collapse onto the range start or a previous split.
		if startRank <= bounds[len(bounds)-1] || startRank >= rhi {
			continue
		}
		bounds = append(bounds, startRank)
		leaves = append(leaves, leaf)
	}
	if len(bounds) < 2 {
		return nil, nil
	}
	bounds = append(bounds, rhi)
	parts := make([]RangePartition, len(leaves))
	for i := range parts {
		parts[i] = RangePartition{Leaf: leaves[i], Count: bounds[i+1] - bounds[i]}
	}
	return parts, nil
}

// SeekPartitionLeaf positions a cursor at the first entry of the given
// leaf with the usual exclusive upper key bound, charging exactly one
// page access (the starting leaf) to tr — the same single charge a
// sequential scan pays when it hops into that leaf.
func (t *BTree) SeekPartitionLeaf(no storage.PageNo, hi []byte, tr *storage.Tracker) (*Cursor, error) {
	n, err := t.load(no, tr)
	if err != nil {
		return nil, err
	}
	if !n.leaf {
		return nil, fmt.Errorf("btree: page %d is not a leaf", no)
	}
	c := &Cursor{tree: t, hi: hi, tr: tr}
	c.setLeaf(n, no)
	c.pos = 0
	return c, nil
}

// loadPlanning fetches a node without touching any I/O accounting: the
// cache is consulted first (a plain load charges the pool even on a
// cache hit), and a cache miss reads the page through the pool's
// uncounted path. Partition planning runs entirely through it.
func (t *BTree) loadPlanning(no storage.PageNo) (*node, error) {
	t.cmu.RLock()
	n, ok := t.cache[no]
	t.cmu.RUnlock()
	if ok {
		return n, nil
	}
	p, err := t.pool.ReadUncounted(storage.PageID{File: t.file, No: no})
	if err != nil {
		return nil, err
	}
	blob, err := p.Get(0)
	if err != nil {
		return nil, fmt.Errorf("btree: node page %d has no blob: %w", no, err)
	}
	n, err = decodeNode(blob, t.data)
	if err != nil {
		return nil, err
	}
	t.cmu.Lock()
	if prior, ok := t.cache[no]; ok {
		n = prior
	} else {
		t.cache[no] = n
	}
	t.cmu.Unlock()
	return n, nil
}

// rankOfKey returns the number of entries whose composite (key, RID)
// orders before (k, zero RID) — the global rank of the first entry a
// Seek at k would deliver. Accounting-free.
func (t *BTree) rankOfKey(k []byte) (int64, error) {
	var acc int64
	no := t.root
	for {
		n, err := t.loadPlanning(no)
		if err != nil {
			return 0, err
		}
		if n.leaf {
			return acc + int64(leafLowerBound(n, k, storage.RID{})), nil
		}
		i := findChild(n, k, storage.RID{})
		for j := 0; j < i; j++ {
			acc += n.counts[j]
		}
		no = n.children[i]
	}
}

// leafForRank descends to the leaf containing the entry at the given
// global rank and returns the leaf page plus the rank of the leaf's
// first entry. Accounting-free. rank must be in [0, t.len).
func (t *BTree) leafForRank(rank int64) (storage.PageNo, int64, error) {
	var acc int64
	no := t.root
	for {
		n, err := t.loadPlanning(no)
		if err != nil {
			return 0, 0, err
		}
		if n.leaf {
			return no, acc, nil
		}
		last := len(n.children) - 1
		for j := range n.children {
			if rank < acc+n.counts[j] || j == last {
				no = n.children[j]
				break
			}
			acc += n.counts[j]
		}
	}
}
