package btree

import (
	"math/rand"
	"testing"

	"rdbdyn/internal/storage"
)

// buildBatchTree builds a deterministic multi-leaf tree. Two fresh
// builds are structurally identical, so a per-entry run over one and a
// batched run over the other see identical pages in identical order —
// the basis for comparing tracker charges exactly.
func buildBatchTree(t testing.TB) (*BTree, *storage.BufferPool, int) {
	t.Helper()
	tr, bp := newTestTree(t, 256)
	vals := make([]int64, 600)
	for i := range vals {
		vals[i] = int64(i)
	}
	rand.New(rand.NewSource(7)).Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	insertInts(t, tr, vals)
	return tr, bp, len(vals)
}

type obs struct {
	key   string
	rid   storage.RID
	stats storage.IOStats // cumulative charges after this entry's batch
}

// collectPerEntry iterates with Next, grouping observations into
// pseudo-batches of size batch so the per-boundary stats snapshots line
// up with collectBatched's.
func collectPerEntry(t *testing.T, tr *BTree, lo, hi []byte, desc bool, batch int) []obs {
	t.Helper()
	trk := storage.NewTracker(nil)
	var next func() ([]byte, storage.RID, bool, error)
	if desc {
		c, err := tr.SeekReverseTracked(lo, hi, trk)
		if err != nil {
			t.Fatal(err)
		}
		next = c.Next
	} else {
		c, err := tr.SeekTracked(lo, hi, trk)
		if err != nil {
			t.Fatal(err)
		}
		next = c.Next
	}
	var out []obs
	for {
		k, r, ok, err := next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, obs{key: string(k), rid: r})
	}
	// Per-entry charge timing is interior to a batch; only boundary
	// totals are contractual. Final totals must match regardless.
	for i := range out {
		out[i].stats = trk.Stats()
	}
	return out
}

func collectBatched(t *testing.T, tr *BTree, lo, hi []byte, desc bool, batch int) ([]obs, storage.IOStats) {
	t.Helper()
	trk := storage.NewTracker(nil)
	var nb func([]Entry) (int, error)
	if desc {
		c, err := tr.SeekReverseTracked(lo, hi, trk)
		if err != nil {
			t.Fatal(err)
		}
		nb = c.NextBatch
	} else {
		c, err := tr.SeekTracked(lo, hi, trk)
		if err != nil {
			t.Fatal(err)
		}
		nb = c.NextBatch
	}
	dst := make([]Entry, batch)
	var out []obs
	for {
		n, err := nb(dst)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		s := trk.Stats()
		for _, e := range dst[:n] {
			out = append(out, obs{key: string(e.Key), rid: e.RID, stats: s})
		}
	}
	return out, trk.Stats()
}

// TestNextBatchEquivalence: batched iteration yields the identical
// (key, RID) sequence as per-entry iteration, and the identical total
// tracker charges, for forward and reverse cursors, bounded and
// unbounded ranges, and dst sizes from 1 to beyond a leaf.
func TestNextBatchEquivalence(t *testing.T) {
	bounds := []struct {
		name   string
		lo, hi []byte
	}{
		{"full", nil, nil},
		{"bounded", intKey(37), intKey(491)},
		{"lowOnly", intKey(100), nil},
		{"hiInsideLeaf", nil, intKey(313)},
		{"empty", intKey(900), intKey(950)},
	}
	for _, desc := range []bool{false, true} {
		for _, b := range bounds {
			for _, batch := range []int{1, 3, 7, 64, 1024} {
				tr1, _, _ := buildBatchTree(t)
				want := collectPerEntry(t, tr1, b.lo, b.hi, desc, batch)

				tr2, bp2, _ := buildBatchTree(t)
				got, total := collectBatched(t, tr2, b.lo, b.hi, desc, batch)

				if len(got) != len(want) {
					t.Fatalf("desc=%v %s batch=%d: %d entries, want %d", desc, b.name, batch, len(got), len(want))
				}
				for i := range want {
					if got[i].key != want[i].key || got[i].rid != want[i].rid {
						t.Fatalf("desc=%v %s batch=%d: entry %d = (%x,%v), want (%x,%v)",
							desc, b.name, batch, i, got[i].key, got[i].rid, want[i].key, want[i].rid)
					}
				}
				if len(want) > 0 {
					if w, g := want[len(want)-1].stats, total; w != g {
						t.Fatalf("desc=%v %s batch=%d: total charges %v, want %v", desc, b.name, batch, g, w)
					}
				}
				if bp2.PinnedPages() != 0 {
					t.Fatalf("desc=%v %s batch=%d: %d pages still pinned after exhaustion", desc, b.name, batch, bp2.PinnedPages())
				}
			}
		}
	}
}

// TestNextBatchInterleavesWithNext: mixing Next and NextBatch on one
// cursor walks the same sequence as Next alone.
func TestNextBatchInterleavesWithNext(t *testing.T) {
	tr1, _, _ := buildBatchTree(t)
	want := collectPerEntry(t, tr1, nil, intKey(400), false, 1)

	tr2, _, _ := buildBatchTree(t)
	c, err := tr2.Seek(nil, intKey(400))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Entry, 5)
	var got []obs
	for turn := 0; ; turn++ {
		if turn%2 == 0 {
			k, r, ok, err := c.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, obs{key: string(k), rid: r})
		} else {
			n, err := c.NextBatch(dst)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			for _, e := range dst[:n] {
				got = append(got, obs{key: string(e.Key), rid: e.RID})
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("interleaved: %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].key != want[i].key || got[i].rid != want[i].rid {
			t.Fatalf("interleaved: entry %d differs", i)
		}
	}
}

// TestCursorCloseIdempotent: Close may be called at any point in the
// cursor's life, repeatedly, without unpinning pages it no longer holds.
func TestCursorCloseIdempotent(t *testing.T) {
	tr, bp, _ := buildBatchTree(t)

	// Mid-iteration close, twice.
	c, err := tr.Seek(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := c.Next(); !ok {
		t.Fatal("tree empty")
	}
	c.Close()
	c.Close()
	if bp.PinnedPages() != 0 {
		t.Fatalf("%d pinned after double Close", bp.PinnedPages())
	}

	// Close after exhaustion.
	c2, err := tr.Seek(intKey(595), nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, _, ok, err := c2.Next(); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
	}
	c2.Close()
	c2.Close()
	if bp.PinnedPages() != 0 {
		t.Fatalf("%d pinned after exhausted Close", bp.PinnedPages())
	}
	if n, err := c2.NextBatch(make([]Entry, 4)); n != 0 || err != nil {
		t.Fatalf("NextBatch after Close = %d, %v", n, err)
	}

	// Reverse: same contract.
	r, err := tr.SeekReverse(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := r.Next(); !ok {
		t.Fatal("reverse empty")
	}
	r.Close()
	r.Close()
	if bp.PinnedPages() != 0 {
		t.Fatalf("%d pinned after reverse double Close", bp.PinnedPages())
	}
	if n, err := r.NextBatch(make([]Entry, 4)); n != 0 || err != nil {
		t.Fatalf("reverse NextBatch after Close = %d, %v", n, err)
	}
}
