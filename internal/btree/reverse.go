package btree

import (
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// ReverseCursor iterates entries in descending (key, RID) order between
// an inclusive lower and exclusive upper encoded-key bound. Leaves are
// singly linked forward, so the cursor keeps the root-to-leaf descent
// path and retreats through it to reach each previous leaf — O(height)
// page accesses per leaf transition, all charged to the buffer pool.
//
// Descending scans are what make "ORDER BY ... DESC" an order-needed
// use of an ascending index.
//
// Like the forward Cursor, the reverse cursor pins its current leaf and
// releases the pin on exhaustion or Close.
type ReverseCursor struct {
	tree   *BTree
	lo     []byte
	stack  []revFrame
	node   *node
	curNo  storage.PageNo
	pos    int
	done   bool
	pinned bool
	tr     *storage.Tracker
}

type revFrame struct {
	no  storage.PageNo
	idx int
}

// SeekReverse positions a cursor at the last entry with key < hi (or
// the last entry overall when hi is nil). lo is the inclusive lower
// bound on keys (nil = unbounded).
func (t *BTree) SeekReverse(lo, hi []byte) (*ReverseCursor, error) {
	return t.SeekReverseTracked(lo, hi, nil)
}

// SeekReverseTracked is SeekReverse charging the descent and all
// subsequent cursor page accesses to tr.
func (t *BTree) SeekReverseTracked(lo, hi []byte, tr *storage.Tracker) (*ReverseCursor, error) {
	c := &ReverseCursor{tree: t, lo: lo, tr: tr}
	no := t.root
	for {
		n, err := t.load(no, tr)
		if err != nil {
			return nil, err
		}
		if n.leaf {
			c.setLeaf(n, no)
			if hi == nil {
				c.pos = len(n.keys) - 1
			} else {
				c.pos = leafLowerBound(n, hi, storage.RID{}) - 1
			}
			if c.pos < 0 {
				if err := c.retreat(); err != nil {
					c.unpin()
					return nil, err
				}
			}
			return c, nil
		}
		idx := len(n.children) - 1
		if hi != nil {
			idx = findChild(n, hi, storage.RID{})
		}
		c.stack = append(c.stack, revFrame{no: no, idx: idx})
		no = n.children[idx]
	}
}

// setLeaf repositions the cursor onto leaf n (page no), moving the pin.
func (c *ReverseCursor) setLeaf(n *node, no storage.PageNo) {
	c.unpin()
	c.node, c.curNo = n, no
	c.tree.pool.Pin(storage.PageID{File: c.tree.file, No: no})
	c.pinned = true
}

func (c *ReverseCursor) unpin() {
	if c.pinned {
		c.tree.pool.Unpin(storage.PageID{File: c.tree.file, No: c.curNo})
		c.pinned = false
	}
}

// retreat moves to the last entry of the previous leaf.
func (c *ReverseCursor) retreat() error {
	for {
		// Pop exhausted frames.
		for len(c.stack) > 0 && c.stack[len(c.stack)-1].idx == 0 {
			c.stack = c.stack[:len(c.stack)-1]
		}
		if len(c.stack) == 0 {
			c.done = true
			c.unpin()
			return nil
		}
		c.stack[len(c.stack)-1].idx--
		// Descend rightmost from the new child.
		f := c.stack[len(c.stack)-1]
		parent, err := c.tree.load(f.no, c.tr)
		if err != nil {
			return err
		}
		no := parent.children[f.idx]
		for {
			n, err := c.tree.load(no, c.tr)
			if err != nil {
				return err
			}
			if n.leaf {
				c.setLeaf(n, no)
				c.pos = len(n.keys) - 1
				break
			}
			c.stack = append(c.stack, revFrame{no: no, idx: len(n.children) - 1})
			no = n.children[len(n.children)-1]
		}
		if c.pos >= 0 {
			return nil
		}
		// Empty leaf (lazy deletion): keep retreating.
	}
}

// Next returns the next entry in descending order; ok is false when the
// cursor passes below lo or exhausts the tree.
func (c *ReverseCursor) Next() (key []byte, rid storage.RID, ok bool, err error) {
	if c.done {
		return nil, storage.RID{}, false, nil
	}
	k, r := c.node.keys[c.pos], c.node.rids[c.pos]
	if c.lo != nil && expr.CompareKeys(k, c.lo) < 0 {
		c.done = true
		c.unpin()
		return nil, storage.RID{}, false, nil
	}
	c.pos--
	if c.pos < 0 {
		if err := c.retreat(); err != nil {
			return nil, storage.RID{}, false, err
		}
	}
	return k, r, true, nil
}

// Close releases the cursor's leaf pin. It is idempotent and required
// when the cursor is abandoned before exhaustion.
func (c *ReverseCursor) Close() {
	c.done = true
	c.unpin()
}
