package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// Property: insertion order never changes the scanned sequence — the
// tree is a canonical representation of its entry set.
func TestQuickInsertionOrderInvariance(t *testing.T) {
	f := func(vals []int16, seed int64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 300 {
			vals = vals[:300]
		}
		build := func(order []int16) []int64 {
			tr, _ := newTestTree(t, 256)
			for i, v := range order {
				if err := tr.Insert(intKey(int64(v)), ridFor(i)); err != nil {
					t.Fatal(err)
				}
			}
			return scanAll(t, tr)
		}
		a := build(vals)
		shuffled := append([]int16(nil), vals...)
		rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		// RIDs differ between permutations (position-derived), so only
		// the key sequences must agree.
		b := build(shuffled)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: CountRange always equals the brute-force count over the
// inserted multiset, for arbitrary inserts and bounds.
func TestQuickCountRangeMatchesBruteForce(t *testing.T) {
	f := func(vals []uint8, a, b uint8) bool {
		if len(vals) > 400 {
			vals = vals[:400]
		}
		tr, _ := newTestTree(t, 256)
		for i, v := range vals {
			if err := tr.Insert(intKey(int64(v)), ridFor(i)); err != nil {
				t.Fatal(err)
			}
		}
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		r := expr.Range{
			Lo: expr.Bound{Value: expr.Int(lo), Inclusive: true, Present: true},
			Hi: expr.Bound{Value: expr.Int(hi), Present: true},
		}
		kl, kh := r.EncodedBounds()
		got, err := tr.CountRange(kl, kh)
		if err != nil {
			return false
		}
		var want int64
		for _, v := range vals {
			if int64(v) >= lo && int64(v) < hi {
				want++
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the forward scan of a tree built from any multiset returns
// exactly the sorted multiset, and the reverse scan its mirror.
func TestQuickScanIsSortedMultiset(t *testing.T) {
	f := func(vals []int32) bool {
		if len(vals) > 300 {
			vals = vals[:300]
		}
		tr, _ := newTestTree(t, 256)
		for i, v := range vals {
			if err := tr.Insert(intKey(int64(v)), ridFor(i)); err != nil {
				t.Fatal(err)
			}
		}
		want := make([]int64, len(vals))
		for i, v := range vals {
			want[i] = int64(v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := scanAll(t, tr)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// Reverse mirrors forward.
		c, err := tr.SeekReverse(nil, nil)
		if err != nil {
			return false
		}
		for i := len(want) - 1; i >= 0; i-- {
			k, _, ok, err := c.Next()
			if err != nil || !ok {
				return false
			}
			row, err := expr.DecodeKey(k, []expr.Type{expr.TypeInt})
			if err != nil || row[0].I != want[i] {
				return false
			}
		}
		_, _, ok, _ := c.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: node serialization round-trips arbitrary leaf content.
func TestQuickNodeCodecRoundTrip(t *testing.T) {
	f := func(keys [][]byte, next uint32) bool {
		if len(keys) > 100 {
			keys = keys[:100]
		}
		n := &node{leaf: true, next: next}
		for i, k := range keys {
			if len(k) > 64 {
				k = k[:64]
			}
			n.keys = append(n.keys, k)
			n.rids = append(n.rids, storage.RID{
				Page: storage.PageID{File: 2, No: storage.PageNo(i)},
				Slot: uint16(i),
			})
		}
		n.recomputeBytes()
		dec, err := decodeNode(n.encode(), 2)
		if err != nil {
			return false
		}
		if dec.next != n.next || len(dec.keys) != len(n.keys) {
			return false
		}
		for i := range n.keys {
			if string(dec.keys[i]) != string(n.keys[i]) || dec.rids[i] != n.rids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
