// Package btree implements a B+-tree index over buffer-pool pages.
//
// The tree is the workhorse of the reproduction: beyond Insert/Delete
// and range cursors it exposes exactly the introspection the paper's
// dynamic optimizer needs —
//
//   - EstimateRange: the "descent to split node" estimator of Section 5
//     (k * f^(l-1), with the B-tree itself acting as a hierarchical,
//     always-up-to-date histogram);
//   - CountRange: exact range cardinality in O(height), possible because
//     internal nodes carry per-child subtree counts ("pseudo-ranked");
//   - SampleRange: uniform random sampling of range entries by ranked
//     descent, standing in for the [Ant92] sampler, plus the classic
//     acceptance/rejection sampler of [OlRo89] as a baseline.
//
// Every node visit goes through the buffer pool and is therefore charged
// I/O, so estimation cost is measurable — the paper requires the
// estimation phase to be "significantly shorter than the productive
// retrieval phases", and the experiments verify that.
//
// Keys are order-preserving encodings (expr.EncodeKey). Duplicate keys
// are supported; entries order by (key, RID). Deletion is lazy (no
// rebalancing): emptied leaves remain in the tree and cursors skip them,
// the common trade-off in production B-trees.
package btree

import (
	"errors"
	"fmt"
	"sync"

	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// ErrKeyTooLarge is returned when a key cannot fit comfortably in a page.
var ErrKeyTooLarge = errors.New("btree: key too large for page")

// BTree is a B+-tree whose nodes live in buffer-pool pages of a
// dedicated disk file.
type BTree struct {
	pool *storage.BufferPool
	file storage.FileID // file holding the tree's pages
	data storage.FileID // heap file the RIDs point into

	root   storage.PageNo
	height int // 1 = root is a leaf

	len         int64 // total entries
	numLeaves   int
	numInternal int
	totChildren int64 // sum of len(children) over internal nodes

	budget int // per-node byte budget

	// cache holds decoded nodes. Pages remain authoritative (every
	// mutation re-serializes into the page); the cache only avoids
	// repeated decoding. I/O accounting happens on the pool.Get that
	// precedes every cache lookup. cmu guards the map so concurrent
	// read-only descents may populate it safely; tree mutations
	// (Insert/Delete) must be serialized by the caller and must not
	// overlap reads of the same tree.
	cmu   sync.RWMutex
	cache map[storage.PageNo]*node
}

// New creates an empty tree on a fresh file of the pool's disk.
// dataFile is the heap file whose records the RIDs reference.
func New(pool *storage.BufferPool, dataFile storage.FileID) (*BTree, error) {
	t := &BTree{
		pool:   pool,
		file:   pool.Disk().CreateFile(),
		data:   dataFile,
		budget: pool.Disk().PageSize() - 32,
		cache:  make(map[storage.PageNo]*node),
	}
	root := &node{leaf: true}
	root.recomputeBytes()
	no, err := t.allocNode(root)
	if err != nil {
		return nil, err
	}
	t.root = no
	t.height = 1
	t.numLeaves = 1
	return t, nil
}

// Len returns the number of entries.
func (t *BTree) Len() int64 { return t.len }

// Height returns the number of levels (1 = root is a leaf).
func (t *BTree) Height() int { return t.height }

// NumNodes returns the number of pages (nodes) in the tree.
func (t *BTree) NumNodes() int { return t.numLeaves + t.numInternal }

// File returns the tree's disk file.
func (t *BTree) File() storage.FileID { return t.file }

// AvgLeafEntries returns the average number of entries per leaf.
func (t *BTree) AvgLeafEntries() float64 {
	if t.numLeaves == 0 {
		return 0
	}
	return float64(t.len) / float64(t.numLeaves)
}

// AvgInternalFanout returns the average child count of internal nodes,
// or 0 when the tree has no internal nodes.
func (t *BTree) AvgInternalFanout() float64 {
	if t.numInternal == 0 {
		return 0
	}
	return float64(t.totChildren) / float64(t.numInternal)
}

// load fetches a node, charging buffer-pool traffic to tr (nil = global
// counters only).
func (t *BTree) load(no storage.PageNo, tr *storage.Tracker) (*node, error) {
	p, err := t.pool.GetTracked(storage.PageID{File: t.file, No: no}, tr)
	if err != nil {
		return nil, err
	}
	t.cmu.RLock()
	n, ok := t.cache[no]
	t.cmu.RUnlock()
	if ok {
		return n, nil
	}
	blob, err := p.Get(0)
	if err != nil {
		return nil, fmt.Errorf("btree: node page %d has no blob: %w", no, err)
	}
	n, err = decodeNode(blob, t.data)
	if err != nil {
		return nil, err
	}
	t.cmu.Lock()
	// Two concurrent descents may race to decode the same page; keep the
	// first decode so there is one canonical node per page.
	if prior, ok := t.cache[no]; ok {
		n = prior
	} else {
		t.cache[no] = n
	}
	t.cmu.Unlock()
	return n, nil
}

// store serializes the node back into its page and marks it dirty.
func (t *BTree) store(no storage.PageNo, n *node) error {
	p, err := t.pool.GetDirty(storage.PageID{File: t.file, No: no})
	if err != nil {
		return err
	}
	if err := p.Update(0, n.encode()); err != nil {
		return fmt.Errorf("btree: node %d overflow: %w", no, err)
	}
	t.cmu.Lock()
	t.cache[no] = n
	t.cmu.Unlock()
	return nil
}

// allocNode places a new node on a fresh page.
func (t *BTree) allocNode(n *node) (storage.PageNo, error) {
	p, err := t.pool.NewPage(t.file)
	if err != nil {
		return 0, err
	}
	if _, err := p.Insert(n.encode()); err != nil {
		return 0, err
	}
	t.cmu.Lock()
	t.cache[p.ID.No] = n
	t.cmu.Unlock()
	return p.ID.No, nil
}

// cmpEntry orders composite entries (key, rid).
func cmpEntry(k1 []byte, r1 storage.RID, k2 []byte, r2 storage.RID) int {
	if c := expr.CompareKeys(k1, k2); c != 0 {
		return c
	}
	return r1.Compare(r2)
}

// findChild returns the child of internal node n that may contain the
// composite entry (k, r): the number of separators <= (k, r).
func findChild(n *node, k []byte, r storage.RID) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmpEntry(n.keys[mid], n.rids[mid], k, r) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafLowerBound returns the position of the first entry >= (k, r).
func leafLowerBound(n *node, k []byte, r storage.RID) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmpEntry(n.keys[mid], n.rids[mid], k, r) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

type splitResult struct {
	sepKey     []byte
	sepRID     storage.RID
	right      storage.PageNo
	rightCount int64
}

// Insert adds the entry (key, rid). Duplicate keys are allowed; the
// exact pair (key, rid) may appear multiple times, but indexes in this
// repository never insert the same pair twice.
func (t *BTree) Insert(key []byte, rid storage.RID) error {
	if len(key) > t.budget/4 {
		return ErrKeyTooLarge
	}
	sp, err := t.insertAt(t.root, key, rid)
	if err != nil {
		return err
	}
	t.len++
	if sp == nil {
		return nil
	}
	// Root split: grow a new root.
	oldRoot := t.root
	leftCount := t.mustSubtreeCount(oldRoot)
	nr := &node{
		leaf:     false,
		keys:     [][]byte{sp.sepKey},
		rids:     []storage.RID{sp.sepRID},
		children: []storage.PageNo{oldRoot, sp.right},
		counts:   []int64{leftCount, sp.rightCount},
	}
	nr.recomputeBytes()
	no, err := t.allocNode(nr)
	if err != nil {
		return err
	}
	t.root = no
	t.height++
	t.numInternal++
	t.totChildren += 2
	return nil
}

func (t *BTree) mustSubtreeCount(no storage.PageNo) int64 {
	n, err := t.load(no, nil)
	if err != nil {
		return 0
	}
	return n.subtreeCount()
}

func (t *BTree) insertAt(no storage.PageNo, key []byte, rid storage.RID) (*splitResult, error) {
	n, err := t.load(no, nil)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		pos := leafLowerBound(n, key, rid)
		n.keys = append(n.keys, nil)
		copy(n.keys[pos+1:], n.keys[pos:])
		n.keys[pos] = append([]byte(nil), key...)
		n.rids = append(n.rids, storage.RID{})
		copy(n.rids[pos+1:], n.rids[pos:])
		n.rids[pos] = rid
		n.bytes += n.entryBytes(key)
		if n.bytes <= t.budget {
			return nil, t.store(no, n)
		}
		return t.splitLeaf(no, n)
	}
	i := findChild(n, key, rid)
	sp, err := t.insertAt(n.children[i], key, rid)
	if err != nil {
		return nil, err
	}
	if sp == nil {
		n.counts[i]++
		return nil, t.store(no, n)
	}
	// Child i split: it kept (old+1-rightCount) entries.
	n.counts[i] = n.counts[i] + 1 - sp.rightCount
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sp.sepKey
	n.rids = append(n.rids, storage.RID{})
	copy(n.rids[i+1:], n.rids[i:])
	n.rids[i] = sp.sepRID
	n.children = append(n.children, 0)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = sp.right
	n.counts = append(n.counts, 0)
	copy(n.counts[i+2:], n.counts[i+1:])
	n.counts[i+1] = sp.rightCount
	n.bytes += n.entryBytes(sp.sepKey)
	t.totChildren++
	if n.bytes <= t.budget {
		return nil, t.store(no, n)
	}
	return t.splitInternal(no, n)
}

func (t *BTree) splitLeaf(no storage.PageNo, n *node) (*splitResult, error) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([][]byte(nil), n.keys[mid:]...),
		rids: append([]storage.RID(nil), n.rids[mid:]...),
		next: n.next,
	}
	right.recomputeBytes()
	n.keys = n.keys[:mid]
	n.rids = n.rids[:mid]
	n.recomputeBytes()
	rightNo, err := t.allocNode(right)
	if err != nil {
		return nil, err
	}
	n.next = uint32(rightNo) + 1
	if err := t.store(no, n); err != nil {
		return nil, err
	}
	t.numLeaves++
	return &splitResult{
		sepKey:     right.keys[0],
		sepRID:     right.rids[0],
		right:      rightNo,
		rightCount: int64(len(right.keys)),
	}, nil
}

func (t *BTree) splitInternal(no storage.PageNo, n *node) (*splitResult, error) {
	mid := len(n.keys) / 2
	sepKey, sepRID := n.keys[mid], n.rids[mid]
	right := &node{
		leaf:     false,
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		rids:     append([]storage.RID(nil), n.rids[mid+1:]...),
		children: append([]storage.PageNo(nil), n.children[mid+1:]...),
		counts:   append([]int64(nil), n.counts[mid+1:]...),
	}
	right.recomputeBytes()
	n.keys = n.keys[:mid]
	n.rids = n.rids[:mid]
	n.children = n.children[:mid+1]
	n.counts = n.counts[:mid+1]
	n.recomputeBytes()
	rightNo, err := t.allocNode(right)
	if err != nil {
		return nil, err
	}
	if err := t.store(no, n); err != nil {
		return nil, err
	}
	t.numInternal++
	return &splitResult{
		sepKey:     sepKey,
		sepRID:     sepRID,
		right:      rightNo,
		rightCount: right.subtreeCount(),
	}, nil
}

// Delete removes the exact entry (key, rid). It returns false when the
// entry is not present. Deletion is lazy: nodes are never merged.
func (t *BTree) Delete(key []byte, rid storage.RID) (bool, error) {
	del, err := t.deleteAt(t.root, key, rid)
	if err != nil {
		return false, err
	}
	if del {
		t.len--
	}
	return del, nil
}

func (t *BTree) deleteAt(no storage.PageNo, key []byte, rid storage.RID) (bool, error) {
	n, err := t.load(no, nil)
	if err != nil {
		return false, err
	}
	if n.leaf {
		pos := leafLowerBound(n, key, rid)
		if pos >= len(n.keys) || cmpEntry(n.keys[pos], n.rids[pos], key, rid) != 0 {
			return false, nil
		}
		n.bytes -= n.entryBytes(n.keys[pos])
		n.keys = append(n.keys[:pos], n.keys[pos+1:]...)
		n.rids = append(n.rids[:pos], n.rids[pos+1:]...)
		return true, t.store(no, n)
	}
	i := findChild(n, key, rid)
	del, err := t.deleteAt(n.children[i], key, rid)
	if err != nil || !del {
		return del, err
	}
	n.counts[i]--
	return true, t.store(no, n)
}

// Contains reports whether the exact entry (key, rid) is present.
func (t *BTree) Contains(key []byte, rid storage.RID) (bool, error) {
	no := t.root
	for {
		n, err := t.load(no, nil)
		if err != nil {
			return false, err
		}
		if n.leaf {
			pos := leafLowerBound(n, key, rid)
			return pos < len(n.keys) && cmpEntry(n.keys[pos], n.rids[pos], key, rid) == 0, nil
		}
		no = n.children[findChild(n, key, rid)]
	}
}
