package btree

import (
	"math/rand"
	"testing"

	"rdbdyn/internal/expr"
)

func reverseScan(t *testing.T, tr *BTree, lo, hi []byte) []int64 {
	t.Helper()
	c, err := tr.SeekReverse(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	var out []int64
	for {
		k, _, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		row, err := expr.DecodeKey(k, []expr.Type{expr.TypeInt})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, row[0].I)
	}
}

func TestReverseFullScanMirrorsForward(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	rng := rand.New(rand.NewSource(2))
	var vals []int64
	for i := 0; i < 3000; i++ {
		vals = append(vals, rng.Int63n(5000))
	}
	insertInts(t, tr, vals)
	fwd := scanAll(t, tr)
	rev := reverseScan(t, tr, nil, nil)
	if len(rev) != len(fwd) {
		t.Fatalf("reverse saw %d entries, forward %d", len(rev), len(fwd))
	}
	for i := range rev {
		if rev[i] != fwd[len(fwd)-1-i] {
			t.Fatalf("mirror broken at %d: %d vs %d", i, rev[i], fwd[len(fwd)-1-i])
		}
	}
}

func TestReverseRangeBounds(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	var vals []int64
	for i := int64(0); i < 1000; i++ {
		vals = append(vals, i)
	}
	insertInts(t, tr, vals)
	r := expr.Range{
		Lo: expr.Bound{Value: expr.Int(100), Inclusive: true, Present: true},
		Hi: expr.Bound{Value: expr.Int(200), Present: true},
	}
	lo, hi := r.EncodedBounds()
	got := reverseScan(t, tr, lo, hi)
	if len(got) != 100 {
		t.Fatalf("range returned %d entries, want 100", len(got))
	}
	if got[0] != 199 || got[len(got)-1] != 100 {
		t.Fatalf("range edges: %d .. %d", got[0], got[len(got)-1])
	}
	for i := 1; i < len(got); i++ {
		if got[i] >= got[i-1] {
			t.Fatalf("not descending at %d", i)
		}
	}
}

func TestReverseEmptyAndMissResults(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	// Empty tree.
	if got := reverseScan(t, tr, nil, nil); len(got) != 0 {
		t.Fatalf("empty tree returned %d entries", len(got))
	}
	insertInts(t, tr, []int64{10, 20, 30})
	// Range below all keys.
	r := expr.Range{Hi: expr.Bound{Value: expr.Int(5), Present: true}}
	_, hi := r.EncodedBounds()
	if got := reverseScan(t, tr, nil, hi); len(got) != 0 {
		t.Fatalf("below-all range returned %v", got)
	}
	// Range above all keys returns everything, descending.
	r2 := expr.Range{Lo: expr.Bound{Value: expr.Int(0), Inclusive: true, Present: true}}
	lo, _ := r2.EncodedBounds()
	if got := reverseScan(t, tr, lo, nil); len(got) != 3 || got[0] != 30 {
		t.Fatalf("got %v", got)
	}
}

func TestReverseSurvivesLazyDeletion(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	var vals []int64
	for i := int64(0); i < 2000; i++ {
		vals = append(vals, i)
	}
	insertInts(t, tr, vals)
	// Empty out a band of leaves in the middle.
	for i := int64(500); i < 1500; i++ {
		if ok, err := tr.Delete(intKey(i), ridFor(int(i))); err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	got := reverseScan(t, tr, nil, nil)
	if len(got) != 1000 {
		t.Fatalf("reverse saw %d entries, want 1000", len(got))
	}
	if got[0] != 1999 || got[len(got)-1] != 0 {
		t.Fatalf("edges: %d .. %d", got[0], got[len(got)-1])
	}
	// The deleted band must not appear.
	for _, v := range got {
		if v >= 500 && v < 1500 {
			t.Fatalf("deleted key %d surfaced", v)
		}
	}
}

func TestReverseDuplicates(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	for i := 0; i < 300; i++ {
		if err := tr.Insert(intKey(5), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := reverseScan(t, tr, nil, nil)
	if len(got) != 300 {
		t.Fatalf("duplicates: %d", len(got))
	}
}
