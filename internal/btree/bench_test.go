package btree

import (
	"math/rand"
	"testing"

	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

var (
	benchTreeCache *BTree
	benchTreeSize  int
)

// benchTree caches the built tree across benchmark rounds — the
// 100k-insert setup would otherwise dominate every b.N probe round.
func benchTree(b *testing.B, n int) *BTree {
	b.Helper()
	if benchTreeCache != nil && benchTreeSize == n {
		return benchTreeCache
	}
	d := storage.NewDisk(8192)
	bp := storage.NewBufferPool(d, 0)
	tr, err := New(bp, d.CreateFile())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		if err := tr.Insert(intKey(rng.Int63n(int64(n))), ridFor(i)); err != nil {
			b.Fatal(err)
		}
	}
	benchTreeCache, benchTreeSize = tr, n
	return tr
}

func BenchmarkBTreeInsert(b *testing.B) {
	d := storage.NewDisk(8192)
	bp := storage.NewBufferPool(d, 0)
	tr, _ := New(bp, d.CreateFile())
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(intKey(rng.Int63()), ridFor(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreePointLookup(b *testing.B) {
	tr := benchTree(b, 100000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := intKey(rng.Int63n(100000))
		if _, err := tr.Seek(k, expr.KeySuccessor(k)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeRangeScan1000(b *testing.B) {
	tr := benchTree(b, 100000)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(99000)
		c, err := tr.Seek(intKey(lo), intKey(lo+1000))
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, _, ok, err := c.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
	}
}

func BenchmarkBTreeEstimateRange(b *testing.B) {
	tr := benchTree(b, 100000)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(90000)
		if _, err := tr.EstimateRange(intKey(lo), intKey(lo+5000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeCountRange(b *testing.B) {
	tr := benchTree(b, 100000)
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(90000)
		if _, err := tr.CountRange(intKey(lo), intKey(lo+5000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeRankedSample(b *testing.B) {
	tr := benchTree(b, 100000)
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.EntryAt(rng.Int63n(tr.Len())); err != nil {
			b.Fatal(err)
		}
	}
}
