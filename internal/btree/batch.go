package btree

import (
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// Entry is one index entry produced by batched cursor iteration.
type Entry struct {
	// Key is the tree's internal copy of the encoded key; callers must
	// not modify it, and it stays valid only until the producing
	// cursor's next batch (the leaf may be unpinned and reloaded).
	Key []byte
	RID storage.RID
}

// NextBatch fills dst with up to len(dst) entries in ascending order and
// returns how many it produced; 0 means the cursor is exhausted. Each
// call drains at most the current leaf, so the leaf pin is taken once
// per page, the Governor is consulted once per leaf hop (inside the
// tree's page load), and the tracker charges are identical — in count
// and order — to per-entry Next calls: batching changes CPU cost only,
// never simulated I/O. Next and NextBatch may be interleaved freely.
func (c *Cursor) NextBatch(dst []Entry) (int, error) {
	if c.done || len(dst) == 0 {
		return 0, nil
	}
	for {
		if c.pos < len(c.node.keys) {
			return c.drainLeaf(dst), nil
		}
		// Leaf exhausted (or empty after lazy deletion): hop forward.
		if c.node.next == 0 {
			c.done = true
			c.unpin()
			return 0, nil
		}
		next := storage.PageNo(c.node.next - 1)
		n, err := c.tree.load(next, c.tr)
		if err != nil {
			return 0, err
		}
		c.setLeaf(n, next)
		c.pos = 0
	}
}

// drainLeaf copies in-range entries from the current position into dst.
// Caller guarantees c.pos < len(c.node.keys). When the upper bound
// cannot fall inside the copied run — decided with a single key compare
// against the run's last key — the copy skips per-entry bound checks.
func (c *Cursor) drainLeaf(dst []Entry) int {
	n := len(c.node.keys) - c.pos
	if n > len(dst) {
		n = len(dst)
	}
	if c.hi != nil && expr.CompareKeys(c.node.keys[c.pos+n-1], c.hi) >= 0 {
		// The bound lands inside this run: walk to it entry by entry.
		for i := 0; i < n; i++ {
			k := c.node.keys[c.pos]
			if expr.CompareKeys(k, c.hi) >= 0 {
				c.done = true
				c.unpin()
				return i
			}
			dst[i] = Entry{Key: k, RID: c.node.rids[c.pos]}
			c.pos++
		}
		return n
	}
	for i := 0; i < n; i++ {
		dst[i] = Entry{Key: c.node.keys[c.pos+i], RID: c.node.rids[c.pos+i]}
	}
	c.pos += n
	return n
}

// NextBatch fills dst with up to len(dst) entries in descending order
// and returns how many it produced; 0 means exhaustion. Like the
// forward cursor's NextBatch it drains at most the current leaf per
// call, and it retreats through the descent stack at the end of the
// batch — eagerly, exactly when per-entry Next would — so the page-load
// charges are identical to per-entry iteration.
func (c *ReverseCursor) NextBatch(dst []Entry) (int, error) {
	if c.done || len(dst) == 0 {
		return 0, nil
	}
	n := 0
	for n < len(dst) {
		k, r := c.node.keys[c.pos], c.node.rids[c.pos]
		if c.lo != nil && expr.CompareKeys(k, c.lo) < 0 {
			c.done = true
			c.unpin()
			return n, nil
		}
		dst[n] = Entry{Key: k, RID: r}
		n++
		c.pos--
		if c.pos < 0 {
			if err := c.retreat(); err != nil {
				return n, err
			}
			return n, nil
		}
	}
	return n, nil
}
