package btree

import (
	"math/rand"
	"sort"
	"testing"

	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// newTestTree builds a tree on a small page size so splits happen early.
func newTestTree(t testing.TB, pageSize int) (*BTree, *storage.BufferPool) {
	t.Helper()
	d := storage.NewDisk(pageSize)
	bp := storage.NewBufferPool(d, 0)
	data := d.CreateFile()
	tr, err := New(bp, data)
	if err != nil {
		t.Fatal(err)
	}
	return tr, bp
}

func ridFor(i int) storage.RID {
	return storage.RID{Page: storage.PageID{File: 0, No: storage.PageNo(i / 50)}, Slot: uint16(i % 50)}
}

func intKey(v int64) []byte { return expr.EncodeKey(nil, expr.Int(v)) }

func insertInts(t testing.TB, tr *BTree, vals []int64) {
	t.Helper()
	for i, v := range vals {
		if err := tr.Insert(intKey(v), ridFor(i)); err != nil {
			t.Fatalf("insert %d: %v", v, err)
		}
	}
}

func scanAll(t testing.TB, tr *BTree) []int64 {
	t.Helper()
	c, err := tr.Seek(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out []int64
	for {
		k, _, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		row, err := expr.DecodeKey(k, []expr.Type{expr.TypeInt})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, row[0].I)
	}
	return out
}

func TestInsertAndScanSorted(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	vals := make([]int64, 2000)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Int63n(10000)
	}
	insertInts(t, tr, vals)
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := scanAll(t, tr)
	want := append([]int64(nil), vals...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("scan returned %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %d, want %d", i, got[i], want[i])
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("tree should have split with page size 256 (height=%d)", tr.Height())
	}
}

func TestRangeCursorBounds(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	var vals []int64
	for i := int64(0); i < 1000; i++ {
		vals = append(vals, i)
	}
	insertInts(t, tr, vals)
	r := expr.Range{
		Lo: expr.Bound{Value: expr.Int(100), Inclusive: true, Present: true},
		Hi: expr.Bound{Value: expr.Int(200), Present: true},
	}
	lo, hi := r.EncodedBounds()
	c, err := tr.Seek(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	prev := int64(-1)
	for {
		k, _, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		row, _ := expr.DecodeKey(k, []expr.Type{expr.TypeInt})
		v := row[0].I
		if v < 100 || v >= 200 {
			t.Fatalf("out-of-range value %d", v)
		}
		if v <= prev {
			t.Fatalf("out of order: %d after %d", v, prev)
		}
		prev = v
		n++
	}
	if n != 100 {
		t.Fatalf("range scan returned %d, want 100", n)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	const dups = 500
	for i := 0; i < dups; i++ {
		if err := tr.Insert(intKey(7), ridFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	insertInts(t, tr, []int64{1, 2, 3, 8, 9})
	lo, hi := expr.PointRange(expr.Int(7)).EncodedBounds()
	c, _ := tr.Seek(lo, hi)
	seen := map[storage.RID]bool{}
	for {
		_, rid, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seen[rid] {
			t.Fatalf("duplicate RID %v returned twice", rid)
		}
		seen[rid] = true
	}
	if len(seen) != dups {
		t.Fatalf("point scan found %d duplicates, want %d", len(seen), dups)
	}
}

func TestDeleteExactEntry(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	insertInts(t, tr, []int64{1, 2, 2, 2, 3})
	// Delete the middle duplicate only.
	ok, err := tr.Delete(intKey(2), ridFor(2))
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	has, err := tr.Contains(intKey(2), ridFor(2))
	if err != nil || has {
		t.Fatal("deleted entry still present")
	}
	has, err = tr.Contains(intKey(2), ridFor(1))
	if err != nil || !has {
		t.Fatal("sibling duplicate vanished")
	}
	// Deleting a missing entry is a no-op.
	ok, err = tr.Delete(intKey(99), ridFor(0))
	if err != nil || ok {
		t.Fatalf("phantom delete: %v %v", ok, err)
	}
}

func TestCountRangeExact(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	rng := rand.New(rand.NewSource(3))
	counts := map[int64]int64{}
	var vals []int64
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(300)
		vals = append(vals, v)
		counts[v]++
	}
	insertInts(t, tr, vals)
	for trial := 0; trial < 200; trial++ {
		a := rng.Int63n(300)
		b := a + rng.Int63n(300-a) + 1
		var want int64
		for v := a; v < b; v++ {
			want += counts[v]
		}
		r := expr.Range{
			Lo: expr.Bound{Value: expr.Int(a), Inclusive: true, Present: true},
			Hi: expr.Bound{Value: expr.Int(b), Present: true},
		}
		lo, hi := r.EncodedBounds()
		got, err := tr.CountRange(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("CountRange[%d,%d) = %d, want %d", a, b, got, want)
		}
	}
	// Unbounded count equals Len.
	all, err := tr.CountRange(nil, nil)
	if err != nil || all != tr.Len() {
		t.Fatalf("CountRange(nil,nil) = %d, want %d", all, tr.Len())
	}
}

func TestCountsSurviveDeletes(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	var vals []int64
	for i := int64(0); i < 3000; i++ {
		vals = append(vals, i)
	}
	insertInts(t, tr, vals)
	// Delete every third entry.
	for i := int64(0); i < 3000; i += 3 {
		ok, err := tr.Delete(intKey(i), ridFor(int(i)))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	got, err := tr.CountRange(nil, nil)
	if err != nil || got != 2000 {
		t.Fatalf("count after deletes = %d, want 2000", got)
	}
	r := expr.Range{
		Lo: expr.Bound{Value: expr.Int(0), Inclusive: true, Present: true},
		Hi: expr.Bound{Value: expr.Int(300), Present: true},
	}
	lo, hi := r.EncodedBounds()
	got, err = tr.CountRange(lo, hi)
	if err != nil || got != 200 {
		t.Fatalf("partial count after deletes = %d, want 200", got)
	}
}

func TestEntryAtMatchesScanOrder(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	rng := rand.New(rand.NewSource(9))
	var vals []int64
	for i := 0; i < 2000; i++ {
		vals = append(vals, rng.Int63n(1<<40))
	}
	insertInts(t, tr, vals)
	sorted := scanAll(t, tr)
	for _, rank := range []int64{0, 1, 17, 999, 1999} {
		k, _, err := tr.EntryAt(rank)
		if err != nil {
			t.Fatal(err)
		}
		row, _ := expr.DecodeKey(k, []expr.Type{expr.TypeInt})
		if row[0].I != sorted[rank] {
			t.Fatalf("EntryAt(%d) = %d, want %d", rank, row[0].I, sorted[rank])
		}
	}
}

func TestEstimateRangeShape(t *testing.T) {
	tr, _ := newTestTree(t, 512)
	var vals []int64
	for i := int64(0); i < 50000; i++ {
		vals = append(vals, i%1000) // 50 entries per distinct key
	}
	insertInts(t, tr, vals)
	mk := func(a, b int64) (lob, hib []byte) {
		r := expr.Range{
			Lo: expr.Bound{Value: expr.Int(a), Inclusive: true, Present: true},
			Hi: expr.Bound{Value: expr.Int(b), Present: true},
		}
		return r.EncodedBounds()
	}
	// The estimator must order ranges correctly across decades even if
	// individual estimates are rough, and be exact for tiny ranges that
	// land in one leaf.
	sizes := []int64{1, 10, 100, 1000}
	var prev float64 = -1
	for _, sz := range sizes {
		lo, hi := mk(0, sz)
		est, err := tr.EstimateRange(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		truth := float64(sz * 50)
		if est.RIDs <= prev {
			t.Fatalf("estimates must grow with range size: size %d got %.0f after %.0f", sz, est.RIDs, prev)
		}
		if est.RIDs < truth/20 || est.RIDs > truth*20 {
			t.Fatalf("estimate for %d keys wildly off: got %.0f, truth %.0f", sz, est.RIDs, truth)
		}
		prev = est.RIDs
	}
	// Empty range -> exact zero via leaf descent.
	lo, hi := mk(5000, 5001)
	est, err := tr.EstimateRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if est.RIDs != 0 {
		t.Fatalf("empty range estimated %f", est.RIDs)
	}
}

func TestEstimateRangeRefinedAccuracy(t *testing.T) {
	tr, _ := newTestTree(t, 512)
	var vals []int64
	for i := int64(0); i < 50000; i++ {
		vals = append(vals, i%1000)
	}
	insertInts(t, tr, vals)
	mk := func(a, b int64) (lob, hib []byte) {
		r := expr.Range{
			Lo: expr.Bound{Value: expr.Int(a), Inclusive: true, Present: true},
			Hi: expr.Bound{Value: expr.Int(b), Present: true},
		}
		return r.EncodedBounds()
	}
	for _, tc := range []struct{ a, b int64 }{{0, 1}, {10, 30}, {100, 400}, {0, 1000}, {990, 1000}} {
		lo, hi := mk(tc.a, tc.b)
		got, _, err := tr.EstimateRangeRefined(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		truth := float64((tc.b - tc.a) * 50)
		if got < truth/2 || got > truth*2 {
			t.Fatalf("refined estimate [%d,%d) = %.0f, truth %.0f", tc.a, tc.b, got, truth)
		}
	}
	// Tiny ranges are flagged exact.
	lo, hi := mk(5, 6)
	got, exact, err := tr.EstimateRangeRefined(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		// 50 duplicates of key 5 may span >2 leaves; only require
		// exactness when the flag says so.
		if exact {
			t.Fatalf("exact flag with wrong count %f", got)
		}
	}
	// Unbounded on both sides approximates Len.
	got, _, err = tr.EstimateRangeRefined(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got < float64(tr.Len())/2 || got > float64(tr.Len())*2 {
		t.Fatalf("full-range refined estimate %.0f vs Len %d", got, tr.Len())
	}
}

func TestEstimateCheaperThanScan(t *testing.T) {
	tr, bp := newTestTree(t, 512)
	var vals []int64
	for i := int64(0); i < 20000; i++ {
		vals = append(vals, i)
	}
	insertInts(t, tr, vals)
	bp.EvictAll()
	bp.ResetStats()
	r := expr.Range{
		Lo: expr.Bound{Value: expr.Int(1000), Inclusive: true, Present: true},
		Hi: expr.Bound{Value: expr.Int(19000), Present: true},
	}
	lo, hi := r.EncodedBounds()
	if _, err := tr.EstimateRange(lo, hi); err != nil {
		t.Fatal(err)
	}
	estCost := bp.Stats().IOCost()
	if int(estCost) > tr.Height() {
		t.Fatalf("estimation cost %d exceeds tree height %d", estCost, tr.Height())
	}
}

func TestSampleRangeUniformity(t *testing.T) {
	tr, _ := newTestTree(t, 512)
	var vals []int64
	for i := int64(0); i < 10000; i++ {
		vals = append(vals, i)
	}
	insertInts(t, tr, vals)
	rng := rand.New(rand.NewSource(21))
	r := expr.Range{
		Lo: expr.Bound{Value: expr.Int(2000), Inclusive: true, Present: true},
		Hi: expr.Bound{Value: expr.Int(4000), Present: true},
	}
	lo, hi := r.EncodedBounds()
	keys, rids, count, err := tr.SampleRange(rng, lo, hi, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2000 {
		t.Fatalf("range count = %d, want 2000", count)
	}
	if len(keys) != 2000 || len(rids) != 2000 {
		t.Fatalf("sample sizes: %d keys, %d rids", len(keys), len(rids))
	}
	// All samples in range; mean near the middle of [2000, 4000).
	var sum float64
	for _, k := range keys {
		row, _ := expr.DecodeKey(k, []expr.Type{expr.TypeInt})
		v := row[0].I
		if v < 2000 || v >= 4000 {
			t.Fatalf("sample %d out of range", v)
		}
		sum += float64(v)
	}
	mean := sum / float64(len(keys))
	if mean < 2900 || mean > 3100 {
		t.Fatalf("sample mean %.0f suggests bias (want ~3000)", mean)
	}
}

func TestSampleAcceptRejectIsUnbiasedEnough(t *testing.T) {
	tr, _ := newTestTree(t, 512)
	var vals []int64
	for i := int64(0); i < 5000; i++ {
		vals = append(vals, i)
	}
	insertInts(t, tr, vals)
	rng := rand.New(rand.NewSource(33))
	mf := tr.MaxFanout()
	var accepted, sum float64
	for i := 0; i < 200000 && accepted < 500; i++ {
		k, _, ok, _, err := tr.SampleAcceptReject(rng, mf)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		accepted++
		row, _ := expr.DecodeKey(k, []expr.Type{expr.TypeInt})
		sum += float64(row[0].I)
	}
	if accepted < 100 {
		t.Fatalf("acceptance rate too low: %v accepted", accepted)
	}
	mean := sum / accepted
	if mean < 2000 || mean > 3000 {
		t.Fatalf("A/R sample mean %.0f suggests bias (want ~2500)", mean)
	}
}

func TestNodeSerializationRoundTrip(t *testing.T) {
	leaf := &node{
		leaf: true,
		keys: [][]byte{intKey(1), intKey(2)},
		rids: []storage.RID{ridFor(0), ridFor(1)},
		next: 5,
	}
	leaf.recomputeBytes()
	dec, err := decodeNode(leaf.encode(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.leaf || dec.next != 5 || len(dec.keys) != 2 {
		t.Fatalf("leaf round trip: %+v", dec)
	}
	if dec.rids[1].Page.File != 3 {
		t.Fatalf("RID file not restored: %v", dec.rids[1])
	}
	inner := &node{
		leaf:     false,
		keys:     [][]byte{intKey(10)},
		rids:     []storage.RID{ridFor(7)},
		children: []storage.PageNo{1, 2},
		counts:   []int64{40, 60},
	}
	inner.recomputeBytes()
	dec, err = decodeNode(inner.encode(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if dec.leaf || len(dec.children) != 2 || dec.counts[1] != 60 {
		t.Fatalf("internal round trip: %+v", dec)
	}
	// Corruption must be detected.
	blob := inner.encode()
	for cut := 1; cut < len(blob); cut++ {
		if _, err := decodeNode(blob[:cut], 3); err == nil {
			t.Fatalf("truncated node at %d accepted", cut)
		}
	}
}

func TestTreeSurvivesCacheEviction(t *testing.T) {
	// A tiny buffer pool forces nodes to round-trip through their
	// serialized form constantly.
	d := storage.NewDisk(512)
	bp := storage.NewBufferPool(d, 4)
	data := d.CreateFile()
	tr, err := New(bp, data)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the decode cache after every operation to force re-decodes.
	rng := rand.New(rand.NewSource(8))
	want := map[int64]int{}
	for i := 0; i < 3000; i++ {
		v := rng.Int63n(500)
		if err := tr.Insert(intKey(v), ridFor(i)); err != nil {
			t.Fatal(err)
		}
		want[v]++
		if i%97 == 0 {
			tr.cache = make(map[storage.PageNo]*node)
			bp.EvictAll()
		}
	}
	tr.cache = make(map[storage.PageNo]*node)
	bp.EvictAll()
	got := scanAll(t, tr)
	if int64(len(got)) != tr.Len() {
		t.Fatalf("scan %d entries, Len %d", len(got), tr.Len())
	}
	counts := map[int64]int{}
	for _, v := range got {
		counts[v]++
	}
	for v, n := range want {
		if counts[v] != n {
			t.Fatalf("key %d: %d entries, want %d", v, counts[v], n)
		}
	}
}

// Model-based randomized test: the tree must agree with a sorted slice
// under a random workload of inserts, deletes, scans, and counts.
func TestTreeAgainstModel(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	rng := rand.New(rand.NewSource(77))
	type entry struct {
		v   int64
		rid storage.RID
	}
	var model []entry
	nextRID := 0
	for op := 0; op < 4000; op++ {
		switch {
		case len(model) == 0 || rng.Intn(10) < 6: // insert
			v := rng.Int63n(200)
			rid := ridFor(nextRID)
			nextRID++
			if err := tr.Insert(intKey(v), rid); err != nil {
				t.Fatal(err)
			}
			model = append(model, entry{v, rid})
		case rng.Intn(2) == 0: // delete random existing
			i := rng.Intn(len(model))
			e := model[i]
			ok, err := tr.Delete(intKey(e.v), e.rid)
			if err != nil || !ok {
				t.Fatalf("delete of live entry failed: %v %v", ok, err)
			}
			model[i] = model[len(model)-1]
			model = model[:len(model)-1]
		default: // count a random range
			a := rng.Int63n(200)
			b := a + rng.Int63n(200-a) + 1
			var want int64
			for _, e := range model {
				if e.v >= a && e.v < b {
					want++
				}
			}
			r := expr.Range{
				Lo: expr.Bound{Value: expr.Int(a), Inclusive: true, Present: true},
				Hi: expr.Bound{Value: expr.Int(b), Present: true},
			}
			lo, hi := r.EncodedBounds()
			got, err := tr.CountRange(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("op %d: CountRange[%d,%d) = %d, want %d", op, a, b, got, want)
			}
		}
		if tr.Len() != int64(len(model)) {
			t.Fatalf("op %d: Len %d, model %d", op, tr.Len(), len(model))
		}
	}
	got := scanAll(t, tr)
	want := make([]int64, len(model))
	for i, e := range model {
		want[i] = e.v
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("final scan %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("final scan diverges at %d", i)
		}
	}
}
