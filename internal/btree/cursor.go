package btree

import (
	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

// Cursor iterates entries in ascending (key, RID) order between an
// inclusive lower and exclusive upper encoded-key bound (nil = open).
// Every node and leaf visit is charged to the buffer pool, so cursor
// progress has measurable I/O cost.
//
// The cursor pins its current leaf in the buffer pool for as long as it
// holds a position there; the pin moves on each leaf hop and is dropped
// on exhaustion or Close. Callers that may abandon a cursor before
// exhaustion (cancelled scans) must Close it to release the pin.
type Cursor struct {
	tree   *BTree
	hi     []byte
	node   *node
	no     storage.PageNo
	pos    int
	done   bool
	pinned bool
	tr     *storage.Tracker
}

// Seek positions a cursor at the first entry with key >= lo (or the
// first entry overall when lo is nil). hi is the exclusive upper bound
// on keys (nil = unbounded).
func (t *BTree) Seek(lo, hi []byte) (*Cursor, error) { return t.SeekTracked(lo, hi, nil) }

// SeekTracked is Seek charging the descent and all subsequent cursor
// page accesses to tr.
func (t *BTree) SeekTracked(lo, hi []byte, tr *storage.Tracker) (*Cursor, error) {
	c := &Cursor{tree: t, hi: hi, tr: tr}
	no := t.root
	for {
		n, err := t.load(no, tr)
		if err != nil {
			return nil, err
		}
		if n.leaf {
			c.setLeaf(n, no)
			if lo == nil {
				c.pos = 0
			} else {
				c.pos = leafLowerBound(n, lo, storage.RID{})
			}
			return c, nil
		}
		if lo == nil {
			no = n.children[0]
		} else {
			no = n.children[findChild(n, lo, storage.RID{})]
		}
	}
}

// SetTracker redirects the cursor's future page charges to tr. A race
// leg scanned on its own goroutine charges a per-leg tracker; when the
// losing leg is adopted back into the sequential scan, its cursor is
// re-pointed at the scan's meter so the remaining charges land there.
func (c *Cursor) SetTracker(tr *storage.Tracker) { c.tr = tr }

// setLeaf repositions the cursor onto leaf n (page no), moving the pin.
func (c *Cursor) setLeaf(n *node, no storage.PageNo) {
	c.unpin()
	c.node, c.no = n, no
	c.tree.pool.Pin(storage.PageID{File: c.tree.file, No: no})
	c.pinned = true
}

func (c *Cursor) unpin() {
	if c.pinned {
		c.tree.pool.Unpin(storage.PageID{File: c.tree.file, No: c.no})
		c.pinned = false
	}
}

// Next returns the next entry. ok is false when the cursor is
// exhausted (past hi or at the end of the tree). The returned key is
// the tree's internal copy and must not be modified.
func (c *Cursor) Next() (key []byte, rid storage.RID, ok bool, err error) {
	if c.done {
		return nil, storage.RID{}, false, nil
	}
	for {
		if c.pos < len(c.node.keys) {
			k, r := c.node.keys[c.pos], c.node.rids[c.pos]
			if c.hi != nil && expr.CompareKeys(k, c.hi) >= 0 {
				c.done = true
				c.unpin()
				return nil, storage.RID{}, false, nil
			}
			c.pos++
			return k, r, true, nil
		}
		if c.node.next == 0 {
			c.done = true
			c.unpin()
			return nil, storage.RID{}, false, nil
		}
		next := storage.PageNo(c.node.next - 1)
		n, err := c.tree.load(next, c.tr)
		if err != nil {
			return nil, storage.RID{}, false, err
		}
		c.setLeaf(n, next)
		c.pos = 0
	}
}

// Done reports whether the cursor has been exhausted.
func (c *Cursor) Done() bool { return c.done }

// Close releases the cursor's leaf pin. It is idempotent and required
// when a cursor is abandoned before exhaustion (an abandoned or
// cancelled scan); an exhausted cursor has already unpinned itself.
func (c *Cursor) Close() {
	c.done = true
	c.unpin()
}
