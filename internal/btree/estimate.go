package btree

import (
	"math"
	"math/rand"

	"rdbdyn/internal/storage"
)

// Estimate is the result of the Section 5 "descent to split node"
// range estimator.
type Estimate struct {
	// RIDs is the estimated number of entries in the range.
	RIDs float64
	// SplitLevel is the level of the split node (1 = leaf). When the
	// descent reached a leaf the estimate is exact.
	SplitLevel int
	// Exact is true when the descent reached a leaf, so RIDs is an
	// exact count rather than an extrapolation.
	Exact bool
	// K is the paper's k: matching entries at a leaf, or spanned
	// children minus one at an internal split node.
	K int
}

// EstimateRange implements the paper's descent-to-split-node method.
// The tree is descended along the unique path of nodes whose branches
// contain the whole range [lo, hi); the first node where the range
// spans k+1 >= 2 children is the split node at level l, and the
// estimate is k * f^(l-1), counting the two edge children as one
// full child between them.
//
// This implementation refines the single average fanout f of the paper
// by using the measured average leaf occupancy for the last level and
// the measured average internal fanout for the levels above, which is
// the same formula when the two coincide.
//
// Bounds are encoded keys: lo inclusive, hi exclusive, nil = unbounded.
// The descent costs O(height) page accesses, charged to the pool — the
// "inexpensive estimates" of the paper's initial stage.
func (t *BTree) EstimateRange(lo, hi []byte) (Estimate, error) {
	no := t.root
	level := t.height
	for {
		n, err := t.load(no, nil)
		if err != nil {
			return Estimate{}, err
		}
		if n.leaf {
			k := t.leafRangeCount(n, lo, hi)
			return Estimate{RIDs: float64(k), SplitLevel: 1, Exact: true, K: k}, nil
		}
		iLo := 0
		if lo != nil {
			iLo = findChild(n, lo, storage.RID{})
		}
		iHi := len(n.children) - 1
		if hi != nil {
			iHi = findChild(n, hi, storage.RID{})
		}
		if iLo > iHi {
			// Degenerate: empty range between separators.
			return Estimate{RIDs: 0, SplitLevel: level, Exact: false, K: 0}, nil
		}
		if iLo == iHi {
			no = n.children[iLo]
			level--
			continue
		}
		// Split node found at this level: the range spans children
		// iLo..iHi, i.e. k+1 children with k = iHi-iLo. Per the paper,
		// the two edge children are assumed half-covered and counted
		// as one between them; an unbounded side means its edge child
		// is fully covered, so it counts as a whole child.
		k := iHi - iLo
		left, right := 0.5, 0.5
		if lo == nil {
			left = 1
		}
		if hi == nil {
			right = 1
		}
		kEff := float64(k-1) + left + right
		return Estimate{
			RIDs:       kEff * t.subtreeSizeEstimate(level-1),
			SplitLevel: level,
			Exact:      false,
			K:          k,
		}, nil
	}
}

// EstimateRangeRefined extends the descent-to-split-node method by
// recursively refining the two edge children of the split node instead
// of assuming them half-covered: the interior children count as full
// subtrees and each edge child is estimated by a further descent with
// the one bound that cuts through it. This is the precision upgrade the
// paper attributes to "random sampling on range children of a split
// node", obtained here deterministically; it costs O(2*height) page
// accesses instead of O(height).
// The returned exact flag is true when no extrapolation happened: the
// whole range was resolved by leaf counts (at most two leaves), so the
// estimate is a true count.
func (t *BTree) EstimateRangeRefined(lo, hi []byte) (rids float64, exact bool, err error) {
	return t.refineAt(t.root, t.height, lo, hi, nil)
}

// EstimateRangeRefinedTracked is EstimateRangeRefined charging the
// descents to tr, so a query's planning I/O is attributed to that query.
func (t *BTree) EstimateRangeRefinedTracked(lo, hi []byte, tr *storage.Tracker) (rids float64, exact bool, err error) {
	return t.refineAt(t.root, t.height, lo, hi, tr)
}

func (t *BTree) refineAt(no storage.PageNo, level int, lo, hi []byte, tr *storage.Tracker) (float64, bool, error) {
	for {
		n, err := t.load(no, tr)
		if err != nil {
			return 0, false, err
		}
		if n.leaf {
			return float64(t.leafRangeCount(n, lo, hi)), true, nil
		}
		iLo := 0
		if lo != nil {
			iLo = findChild(n, lo, storage.RID{})
		}
		iHi := len(n.children) - 1
		if hi != nil {
			iHi = findChild(n, hi, storage.RID{})
		}
		if iLo > iHi {
			return 0, true, nil
		}
		if iLo == iHi {
			no = n.children[iLo]
			level--
			continue
		}
		// Interior children are fully covered: extrapolate their sizes
		// from average occupancy (this keeps the method an estimate —
		// the tree is used as a histogram, not as an exact counter).
		interior := iHi - iLo - 1
		est := float64(interior) * t.subtreeSizeEstimate(level-1)
		left, lx, err := t.refineAt(n.children[iLo], level-1, lo, nil, tr)
		if err != nil {
			return 0, false, err
		}
		right, rx, err := t.refineAt(n.children[iHi], level-1, nil, hi, tr)
		if err != nil {
			return 0, false, err
		}
		return est + left + right, interior == 0 && lx && rx, nil
	}
}

// subtreeSizeEstimate returns the estimated entry count of a subtree
// rooted at the given level (leaf = level 1), using measured average
// occupancies: leafEntries * internalFanout^(level-1).
func (t *BTree) subtreeSizeEstimate(level int) float64 {
	if level <= 0 {
		return 1
	}
	est := t.AvgLeafEntries()
	if est == 0 {
		est = 1
	}
	if level > 1 {
		f := t.AvgInternalFanout()
		if f < 2 {
			f = 2
		}
		est *= math.Pow(f, float64(level-1))
	}
	return est
}

// leafRangeCount counts entries within bounds inside one leaf.
func (t *BTree) leafRangeCount(n *node, lo, hi []byte) int {
	start := 0
	if lo != nil {
		start = leafLowerBound(n, lo, storage.RID{})
	}
	end := len(n.keys)
	if hi != nil {
		end = leafLowerBound(n, hi, storage.RID{})
	}
	if end < start {
		return 0
	}
	return end - start
}

// Rank returns the number of entries with key < k (k nil = all entries,
// returning Len). Cost: one O(height) descent.
func (t *BTree) Rank(k []byte) (int64, error) {
	if k == nil {
		return t.len, nil
	}
	var rank int64
	no := t.root
	for {
		n, err := t.load(no, nil)
		if err != nil {
			return 0, err
		}
		if n.leaf {
			return rank + int64(leafLowerBound(n, k, storage.RID{})), nil
		}
		i := findChild(n, k, storage.RID{})
		for j := 0; j < i; j++ {
			rank += n.counts[j]
		}
		no = n.children[i]
	}
}

// CountRange returns the exact number of entries in [lo, hi) using the
// per-child subtree counts: two ranked descents.
func (t *BTree) CountRange(lo, hi []byte) (int64, error) {
	var loRank int64
	if lo != nil {
		r, err := t.Rank(lo)
		if err != nil {
			return 0, err
		}
		loRank = r
	}
	hiRank := t.len
	if hi != nil {
		r, err := t.Rank(hi)
		if err != nil {
			return 0, err
		}
		hiRank = r
	}
	if hiRank < loRank {
		return 0, nil
	}
	return hiRank - loRank, nil
}

// EntryAt returns the entry with the given rank (0-based) in composite
// order. It is the primitive of ranked ("pseudo-ranked B+-tree")
// sampling.
func (t *BTree) EntryAt(rank int64) (key []byte, rid storage.RID, err error) {
	no := t.root
	for {
		n, err := t.load(no, nil)
		if err != nil {
			return nil, storage.RID{}, err
		}
		if n.leaf {
			if rank < 0 || rank >= int64(len(n.keys)) {
				return nil, storage.RID{}, ErrCorruptNode
			}
			return n.keys[rank], n.rids[rank], nil
		}
		i := 0
		for i < len(n.counts)-1 && rank >= n.counts[i] {
			rank -= n.counts[i]
			i++
		}
		no = n.children[i]
	}
}

// SampleRange draws up to max uniform random entries (with replacement)
// from the range [lo, hi) by ranked descent — the behaviour of the
// [Ant92] sampler the paper's initial stage relies on. It returns the
// sampled keys and RIDs and the exact range count it computed on the
// way. Each sample costs O(height) page accesses.
func (t *BTree) SampleRange(rng *rand.Rand, lo, hi []byte, max int) (keys [][]byte, rids []storage.RID, count int64, err error) {
	var loRank int64
	if lo != nil {
		if loRank, err = t.Rank(lo); err != nil {
			return nil, nil, 0, err
		}
	}
	hiRank := t.len
	if hi != nil {
		if hiRank, err = t.Rank(hi); err != nil {
			return nil, nil, 0, err
		}
	}
	count = hiRank - loRank
	if count <= 0 {
		return nil, nil, 0, nil
	}
	for i := 0; i < max; i++ {
		r := loRank + rng.Int63n(count)
		k, rid, err := t.EntryAt(r)
		if err != nil {
			return nil, nil, 0, err
		}
		keys = append(keys, k)
		rids = append(rids, rid)
	}
	return keys, rids, count, nil
}

// SampleAcceptReject draws one uniform random entry from the whole tree
// with the acceptance/rejection method of [OlRo89]: descend picking a
// uniform child at each level, accept the final entry with probability
// prod(fanout_i) / prod(maxFanout). It returns ok=false on rejection;
// attempts gives the number of node visits, so experiments can compare
// its cost against ranked sampling.
func (t *BTree) SampleAcceptReject(rng *rand.Rand, maxFanout int) (key []byte, rid storage.RID, ok bool, visits int, err error) {
	if t.len == 0 {
		return nil, storage.RID{}, false, 0, nil
	}
	accept := 1.0
	no := t.root
	for {
		n, err := t.load(no, nil)
		if err != nil {
			return nil, storage.RID{}, false, visits, err
		}
		visits++
		if n.leaf {
			if len(n.keys) == 0 {
				return nil, storage.RID{}, false, visits, nil
			}
			i := rng.Intn(len(n.keys))
			accept *= float64(len(n.keys)) / float64(maxFanout)
			if rng.Float64() >= accept {
				return nil, storage.RID{}, false, visits, nil
			}
			return n.keys[i], n.rids[i], true, visits, nil
		}
		i := rng.Intn(len(n.children))
		accept *= float64(len(n.children)) / float64(maxFanout)
		no = n.children[i]
	}
}

// MaxFanout returns an upper bound on node fanout for the
// acceptance/rejection sampler, derived from the page budget and the
// smallest possible entry size.
func (t *BTree) MaxFanout() int {
	f := t.budget / leafEntryOverhead
	if f < 2 {
		f = 2
	}
	return f
}
