package btree

import (
	"context"
	"errors"
	"testing"

	"rdbdyn/internal/expr"
	"rdbdyn/internal/storage"
)

func encInt(v int64) []byte {
	return expr.EncodeKey(nil, expr.Int(v))
}

// TestDeadlineExpiresInDescent drives a governed Seek with an already
// expired context: the very first page access of the root-to-leaf
// descent must refuse with context.DeadlineExceeded, and no pin may be
// left behind.
func TestDeadlineExpiresInDescent(t *testing.T) {
	tr, pool := newTestTree(t, 512)
	var vals []int64
	for i := int64(0); i < 20000; i++ {
		vals = append(vals, i)
	}
	insertInts(t, tr, vals)
	if tr.Height() < 2 {
		t.Fatalf("tree too shallow (height %d) to exercise a descent", tr.Height())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	trk := storage.NewTracker(storage.NewGovernor(ctx, 0))
	if _, err := tr.SeekTracked(encInt(5000), encInt(6000), trk); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SeekTracked err = %v, want context.DeadlineExceeded", err)
	}
	if trk.IOCost() != 0 {
		t.Fatalf("expired descent still charged %d I/Os", trk.IOCost())
	}
	if n := pool.PinnedPages(); n != 0 {
		t.Fatalf("%d pins leaked by the refused descent", n)
	}
}

// TestDeadlineExpiresMidLeafIteration seeks successfully, then expires
// the deadline mid-iteration: the next leaf hop must surface the
// deadline error, and Close must release the pin the cursor still
// holds on its current leaf.
func TestDeadlineExpiresMidLeafIteration(t *testing.T) {
	tr, pool := newTestTree(t, 512)
	var vals []int64
	for i := int64(0); i < 20000; i++ {
		vals = append(vals, i)
	}
	insertInts(t, tr, vals)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trk := storage.NewTracker(storage.NewGovernor(ctx, 0))
	cur, err := tr.SeekTracked(encInt(0), nil, trk)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := cur.Next(); err != nil || !ok {
		t.Fatalf("first entry: ok=%v err=%v", ok, err)
	}
	cancel()
	// The current leaf's entries are already in memory; the error must
	// surface no later than the next page access (the leaf hop).
	sawErr := false
	for i := 0; i < 100000; i++ {
		_, _, ok, err := cur.Next()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			sawErr = true
			break
		}
		if !ok {
			t.Fatal("cursor exhausted the whole tree despite cancellation")
		}
	}
	if !sawErr {
		t.Fatal("no error surfaced after cancellation")
	}
	if n := pool.PinnedPages(); n == 0 {
		t.Fatal("cursor should still pin its current leaf until Close")
	}
	cur.Close()
	if n := pool.PinnedPages(); n != 0 {
		t.Fatalf("%d pins leaked after Close", n)
	}
}

// TestBudgetExhaustionInReverseScan covers the reverse cursor under a
// budget: the descent plus a few retreats exhaust it and the error is
// ErrBudgetExceeded, with all pins released after Close.
func TestBudgetExhaustionInReverseScan(t *testing.T) {
	tr, pool := newTestTree(t, 512)
	var vals []int64
	for i := int64(0); i < 20000; i++ {
		vals = append(vals, i)
	}
	insertInts(t, tr, vals)
	// Budgets meter genuine simulated I/O (pool misses): start cold.
	pool.EvictAll()
	trk := storage.NewTracker(storage.NewGovernor(context.Background(), 4))
	cur, err := tr.SeekReverseTracked(nil, nil, trk)
	if err == nil {
		for {
			_, _, ok, nerr := cur.Next()
			if nerr != nil {
				err = nerr
				break
			}
			if !ok {
				break
			}
		}
		cur.Close()
	}
	if !errors.Is(err, storage.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if n := pool.PinnedPages(); n != 0 {
		t.Fatalf("%d pins leaked", n)
	}
}
