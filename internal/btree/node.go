package btree

import (
	"encoding/binary"
	"errors"

	"rdbdyn/internal/storage"
)

// ErrCorruptNode is returned when a stored node blob cannot be decoded.
var ErrCorruptNode = errors.New("btree: corrupt node")

// node is the decoded form of one B+-tree page.
//
// Leaf nodes hold (key, rid) entries sorted by the composite order
// (CompareKeys on key, then RID order); duplicates of the same key are
// distinguished by RID. Internal nodes hold separators (also composite
// (key, rid) pairs), child page numbers, and per-child subtree entry
// counts. The counts make the tree "pseudo-ranked": exact range counts
// and uniform random sampling both become O(height) descents, which is
// what the [Ant92]-style sampler in this package relies on.
type node struct {
	leaf bool

	// Entry keys. For leaves these are the indexed keys; for internal
	// nodes they are separators: child i holds entries in
	// [sep[i-1], sep[i]) under the composite order.
	keys []([]byte)
	rids []storage.RID

	// Leaf only: next sibling page number + 1 (0 = last leaf).
	next uint32

	// Internal only: len(children) == len(keys)+1, counts parallel.
	children []storage.PageNo
	counts   []int64

	// bytes is the serialized size estimate, maintained incrementally.
	bytes int
}

const (
	nodeBaseBytes     = 16
	leafEntryOverhead = 4 + 6  // varint key length + encoded RID
	sepEntryOverhead  = 4 + 18 // varint key length + RID + child + count
)

func (n *node) entryBytes(key []byte) int {
	if n.leaf {
		return leafEntryOverhead + len(key)
	}
	return sepEntryOverhead + len(key)
}

// full reports whether adding key would overflow the page byte budget.
func (n *node) full(key []byte, budget int) bool {
	return n.bytes+n.entryBytes(key) > budget
}

// recomputeBytes recalculates the serialized size from scratch (used
// after splits).
func (n *node) recomputeBytes() {
	b := nodeBaseBytes
	for _, k := range n.keys {
		b += n.entryBytes(k)
	}
	n.bytes = b
}

// subtreeCount returns the number of entries under the node: for a leaf
// its own entries, for an internal node the sum of child counts.
func (n *node) subtreeCount() int64 {
	if n.leaf {
		return int64(len(n.keys))
	}
	var s int64
	for _, c := range n.counts {
		s += c
	}
	return s
}

func appendRID(dst []byte, r storage.RID) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Page.No))
	return binary.BigEndian.AppendUint16(dst, r.Slot)
}

func decodeRID(b []byte, file storage.FileID) (storage.RID, []byte, error) {
	if len(b) < 6 {
		return storage.RID{}, nil, ErrCorruptNode
	}
	r := storage.RID{
		Page: storage.PageID{File: file, No: storage.PageNo(binary.BigEndian.Uint32(b))},
		Slot: binary.BigEndian.Uint16(b[4:]),
	}
	return r, b[6:], nil
}

// encode serializes the node into a blob stored in slot 0 of its page.
// ridFile is the heap file RIDs point into (RIDs store only page+slot).
func (n *node) encode() []byte {
	buf := make([]byte, 0, n.bytes)
	flags := byte(0)
	if n.leaf {
		flags = 1
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(n.keys)))
	if n.leaf {
		buf = binary.AppendUvarint(buf, uint64(n.next))
		for i, k := range n.keys {
			buf = binary.AppendUvarint(buf, uint64(len(k)))
			buf = append(buf, k...)
			buf = appendRID(buf, n.rids[i])
		}
		return buf
	}
	for i, c := range n.children {
		buf = binary.AppendUvarint(buf, uint64(c))
		buf = binary.AppendVarint(buf, n.counts[i])
		if i < len(n.keys) {
			buf = binary.AppendUvarint(buf, uint64(len(n.keys[i])))
			buf = append(buf, n.keys[i]...)
			buf = appendRID(buf, n.rids[i])
		}
	}
	return buf
}

// decodeNode parses a node blob. ridFile re-fills the file component of
// decoded RIDs.
func decodeNode(b []byte, ridFile storage.FileID) (*node, error) {
	if len(b) < 2 {
		return nil, ErrCorruptNode
	}
	n := &node{leaf: b[0] == 1}
	b = b[1:]
	cnt, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, ErrCorruptNode
	}
	b = b[k:]
	if n.leaf {
		nx, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, ErrCorruptNode
		}
		b = b[k:]
		n.next = uint32(nx)
		n.keys = make([][]byte, 0, cnt)
		n.rids = make([]storage.RID, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			kl, k := binary.Uvarint(b)
			if k <= 0 || uint64(len(b)-k) < kl {
				return nil, ErrCorruptNode
			}
			b = b[k:]
			key := make([]byte, kl)
			copy(key, b[:kl])
			b = b[kl:]
			var (
				r   storage.RID
				err error
			)
			if r, b, err = decodeRID(b, ridFile); err != nil {
				return nil, err
			}
			n.keys = append(n.keys, key)
			n.rids = append(n.rids, r)
		}
	} else {
		n.children = make([]storage.PageNo, 0, cnt+1)
		n.counts = make([]int64, 0, cnt+1)
		n.keys = make([][]byte, 0, cnt)
		n.rids = make([]storage.RID, 0, cnt)
		for i := uint64(0); i <= cnt; i++ {
			c, k := binary.Uvarint(b)
			if k <= 0 {
				return nil, ErrCorruptNode
			}
			b = b[k:]
			sz, k := binary.Varint(b)
			if k <= 0 {
				return nil, ErrCorruptNode
			}
			b = b[k:]
			n.children = append(n.children, storage.PageNo(c))
			n.counts = append(n.counts, sz)
			if i < cnt {
				kl, k := binary.Uvarint(b)
				if k <= 0 || uint64(len(b)-k) < kl {
					return nil, ErrCorruptNode
				}
				b = b[k:]
				key := make([]byte, kl)
				copy(key, b[:kl])
				b = b[kl:]
				var (
					r   storage.RID
					err error
				)
				if r, b, err = decodeRID(b, ridFile); err != nil {
					return nil, err
				}
				n.keys = append(n.keys, key)
				n.rids = append(n.rids, r)
			}
		}
	}
	if len(b) != 0 {
		return nil, ErrCorruptNode
	}
	n.recomputeBytes()
	return n, nil
}
