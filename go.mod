module rdbdyn

go 1.22
