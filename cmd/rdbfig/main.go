// Command rdbfig regenerates the paper's analytical figures: the
// selectivity-distribution transformations of Figure 2.1, the
// certainty-degradation series of Figure 2.2, and the Section 2
// truncated-hyperbola fit errors.
//
// Usage:
//
//	rdbfig -fig 2.1
//	rdbfig -fig 2.2 -bins 1024
//	rdbfig -fig hyperbola
//	rdbfig -fig all
package main

import (
	"flag"
	"fmt"
	"os"

	"rdbdyn/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (2.1|2.2|hyperbola|all)")
	bins := flag.Int("bins", 0, "distribution bins (0 = default)")
	flag.Parse()

	var runs []func() (*bench.Report, error)
	switch *fig {
	case "2.1":
		runs = append(runs, func() (*bench.Report, error) { return bench.Fig21(*bins) })
	case "2.2":
		runs = append(runs, func() (*bench.Report, error) { return bench.Fig22(*bins) })
	case "hyperbola":
		runs = append(runs, func() (*bench.Report, error) { return bench.HyperbolaFits(*bins) })
	case "all":
		runs = append(runs,
			func() (*bench.Report, error) { return bench.Fig21(*bins) },
			func() (*bench.Report, error) { return bench.Fig22(*bins) },
			func() (*bench.Report, error) { return bench.HyperbolaFits(*bins) },
		)
	default:
		fmt.Fprintf(os.Stderr, "rdbfig: unknown figure %q\n", *fig)
		os.Exit(1)
	}
	for _, run := range runs {
		r, err := run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rdbfig:", err)
			os.Exit(1)
		}
		r.Fprint(os.Stdout)
	}
}
