// Command rdbsh is an interactive SQL shell over an in-memory database
// driven by the dynamic optimizer. It starts with the demo FAMILIES
// table loaded (100k rows, skewed CITY, indexes on AGE and CITY) so the
// paper's behaviors can be poked at directly.
//
//	$ rdbsh
//	rdb> SELECT COUNT(*) FROM FAMILIES WHERE AGE >= 9900
//	rdb> SELECT * FROM FAMILIES WHERE CITY = 0 LIMIT TO 5 ROWS
//	rdb> \stats        -- show the last statement's tactic, trace, and I/O
//	rdb> \set A1 9990  -- bind a host variable
//	rdb> SELECT * FROM FAMILIES WHERE AGE >= :A1 LIMIT 3
//	rdb> \timeout 50ms -- deadline for every following statement
//	rdb> \budget 2000  -- per-query simulated-I/O budget
//	rdb> \quit
//
// Ctrl-C cancels the in-flight query (reporting the rows delivered and
// I/O attributed so far) instead of killing the shell.
package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"time"

	"rdbdyn/internal/core"
	"rdbdyn/internal/engine"
	"rdbdyn/internal/feedback"
	"rdbdyn/internal/workload"
)

// interruptState routes SIGINT to the in-flight query's cancel
// function. When no query is running the signal is swallowed (the
// shell stays alive; \quit exits).
type interruptState struct {
	mu     sync.Mutex
	cancel context.CancelFunc
}

func (s *interruptState) set(c context.CancelFunc) {
	s.mu.Lock()
	s.cancel = c
	s.mu.Unlock()
}

func (s *interruptState) fire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel == nil {
		return false
	}
	s.cancel()
	return true
}

func main() {
	cfg := core.DefaultConfig()
	cfg.Parallelism = 4
	cfg.AdaptiveParallelism = true
	db := engine.Open(engine.Options{
		PoolFrames:     1024,
		Optimizer:      cfg,
		EnableFeedback: true,
		PlanCache:      engine.PlanCacheConfig{Enable: true},
	})
	spec := workload.TableSpec{
		Name: "FAMILIES",
		Rows: 100000,
		Columns: []workload.ColumnSpec{
			{Name: "ID", Gen: &workload.Seq{}},
			{Name: "AGE", Gen: workload.Uniform{Lo: 0, Hi: 10000}},
			{Name: "CITY", Gen: &workload.Zipf{S: 1.3, V: 1, N: 1000}},
			{Name: "PAD", Gen: workload.Pad{Len: 40}},
		},
		Indexes: [][]string{{"AGE"}, {"CITY"}},
		Seed:    1,
	}
	fmt.Println("loading demo FAMILIES table (100k rows, indexes on AGE and CITY)...")
	if _, err := workload.Build(db.Catalog(), spec); err != nil {
		fmt.Fprintln(os.Stderr, "rdbsh:", err)
		os.Exit(1)
	}
	// A second table keyed to FAMILIES.ID so multi-table statements
	// (JOIN ... ON, comma syntax) can be poked at too.
	ordSpec := workload.TableSpec{
		Name: "ORDERS",
		Rows: 50000,
		Columns: []workload.ColumnSpec{
			{Name: "ID", Gen: &workload.Seq{}},
			{Name: "FAM", Gen: workload.Uniform{Lo: 0, Hi: 100000}},
			{Name: "QTY", Gen: workload.Uniform{Lo: 1, Hi: 10}},
		},
		Indexes: [][]string{{"FAM"}},
		Seed:    2,
	}
	fmt.Println("loading demo ORDERS table (50k rows, FAM -> FAMILIES.ID, index on FAM)...")
	if _, err := workload.Build(db.Catalog(), ordSpec); err != nil {
		fmt.Fprintln(os.Stderr, "rdbsh:", err)
		os.Exit(1)
	}
	fmt.Println(`ready. SQL statements end at newline; \help for commands. Ctrl-C cancels the running query.`)

	intr := &interruptState{}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		for range sig {
			if !intr.fire() {
				fmt.Println(`
interrupt: no query in flight (\quit to exit)`)
			}
		}
	}()

	binds := engine.Binds{}
	var (
		lastStats *core.RetrievalStats
		timeout   time.Duration
		budget    int64
	)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("rdb> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\help`:
			fmt.Println(`commands:
  \set NAME VALUE   bind a host variable (integer or 'string')
  \binds            show current bindings
  \timeout DUR      deadline for every following statement (e.g. 50ms; 0 = off)
  \budget N         per-query simulated-I/O budget (0 = off)
  \stats            show the last statement's tactic, strategy, I/O, trace
  \metrics          show cumulative optimizer metrics (tactic wins, switches, joins, estimate error)
  \cache            show the plan cache (frozen plans, win streaks, hit/miss counters)
  \feedback         show the feedback registry's estimation correction factors
  \quit             exit
EXPLAIN <select> describes the plan; EXPLAIN ANALYZE <select> executes it
and reports the typed competition events alongside. Ctrl-C cancels the
in-flight query and reports its partial progress.`)
		case line == `\binds`:
			for k, v := range binds {
				fmt.Printf("  :%s = %v\n", k, v)
			}
		case line == `\stats`:
			if lastStats == nil {
				fmt.Println("no statement has run yet")
				continue
			}
			printStats(*lastStats)
		case line == `\metrics`:
			printMetrics(db.Metrics())
		case line == `\cache`:
			printCache(db.PlanCacheSnapshot())
		case line == `\feedback`:
			printFeedback(db.FeedbackSnapshot())
		case line == `\timeout` || strings.HasPrefix(line, `\timeout `):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\timeout`))
			switch {
			case arg == "":
				if timeout > 0 {
					fmt.Printf("timeout: %v\n", timeout)
				} else {
					fmt.Println("timeout: off")
				}
			case arg == "0" || arg == "off":
				timeout = 0
				fmt.Println("timeout off")
			default:
				d, err := time.ParseDuration(arg)
				if err != nil || d < 0 {
					fmt.Println(`usage: \timeout DURATION (e.g. 50ms, 2s; 0 = off)`)
					continue
				}
				timeout = d
				fmt.Printf("timeout set to %v\n", timeout)
			}
		case line == `\budget` || strings.HasPrefix(line, `\budget `):
			arg := strings.TrimSpace(strings.TrimPrefix(line, `\budget`))
			switch {
			case arg == "":
				if budget > 0 {
					fmt.Printf("I/O budget: %d\n", budget)
				} else {
					fmt.Println("I/O budget: off")
				}
			case arg == "0" || arg == "off":
				budget = 0
				fmt.Println("I/O budget off")
			default:
				n, err := strconv.ParseInt(arg, 10, 64)
				if err != nil || n < 0 {
					fmt.Println(`usage: \budget N (simulated page I/Os; 0 = off)`)
					continue
				}
				budget = n
				fmt.Printf("I/O budget set to %d simulated page I/Os\n", budget)
			}
		case strings.HasPrefix(line, `\set `):
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println(`usage: \set NAME VALUE`)
				continue
			}
			if v, err := strconv.ParseInt(parts[2], 10, 64); err == nil {
				binds[parts[1]] = v
			} else if f, err := strconv.ParseFloat(parts[2], 64); err == nil {
				binds[parts[1]] = f
			} else {
				binds[parts[1]] = strings.Trim(parts[2], "'")
			}
		case strings.HasPrefix(line, `\`):
			fmt.Println(`unknown command; \help for help`)
		default:
			up := strings.ToUpper(line)
			if strings.HasPrefix(up, "INSERT") || strings.HasPrefix(up, "DELETE") || strings.HasPrefix(up, "UPDATE") {
				n, err := db.Exec(line, binds)
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Printf("-- %d rows affected\n", n)
				continue
			}
			st, err := runSQL(db, line, binds, timeout, budget, intr)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			lastStats = st
		}
	}
}

// cancelCause reports whether err is one of the three cooperative
// unwind causes (interrupt, deadline, budget) and names it.
func cancelCause(err error) (string, bool) {
	switch {
	case errors.Is(err, core.ErrBudgetExceeded):
		return "I/O budget exhausted", true
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline exceeded", true
	case errors.Is(err, context.Canceled):
		return "interrupted", true
	default:
		return "", false
	}
}

func runSQL(db *engine.DB, src string, binds engine.Binds, timeout time.Duration, budget int64, intr *interruptState) (*core.RetrievalStats, error) {
	db.Pool().ResetStats()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}
	if budget > 0 {
		ctx = core.WithIOBudget(ctx, budget)
	}
	intr.set(cancel)
	defer intr.set(nil)

	res, err := db.QueryContext(ctx, src, binds)
	if err != nil {
		if cause, ok := cancelCause(err); ok {
			return nil, fmt.Errorf("%s before any row was delivered", cause)
		}
		return nil, err
	}
	fmt.Println(strings.Join(res.Columns(), " | "))
	count := 0
	const maxShow = 25
	for {
		row, ok, err := res.Next()
		if err != nil {
			st := res.Stats()
			res.Close()
			if cause, ok := cancelCause(err); ok {
				fmt.Printf("-- %s: %d rows delivered before the query unwound, attributed I/O: %s\n",
					cause, count, st.IO)
				return &st, nil
			}
			return nil, err
		}
		if !ok {
			break
		}
		count++
		if count <= maxShow {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Println(strings.Join(cells, " | "))
		}
	}
	if count > maxShow {
		fmt.Printf("... (%d rows total)\n", count)
	}
	if err := res.Close(); err != nil {
		return nil, err
	}
	st := res.Stats()
	fmt.Printf("-- %d rows, tactic=%s, pool I/O: %s\n", count, st.Tactic, db.Pool().Stats())
	return &st, nil
}

func printStats(st core.RetrievalStats) {
	fmt.Printf("tactic:    %s\n", st.Tactic)
	fmt.Printf("strategy:  %s\n", st.Strategy)
	fmt.Printf("attributed I/O: %s (estimation: %d)\n", st.IO, st.EstimateIO)
	fmt.Printf("rows delivered: %d (foreground: %d, final list: %d)\n",
		st.RowsDelivered, st.FgRows, st.FinalListLen)
	for i, sg := range st.JoinStages {
		line := fmt.Sprintf("stage %d %s: %s", i, sg.Table, sg.Operator)
		if sg.Index != "" {
			line += fmt.Sprintf("(%s)", sg.Index)
		}
		line += fmt.Sprintf("  est %.0f rows, actual %d, I/O %d", sg.EstRows, sg.ActualRows, sg.IO)
		if sg.Reoptimized {
			line += "  [re-optimized]"
		}
		fmt.Println(" ", line)
	}
	for _, tr := range st.Trace {
		fmt.Println("  *", tr)
	}
}

func printMetrics(m core.MetricsSnapshot) {
	fmt.Printf("queries:           %d\n", m.Queries)
	fmt.Printf("empty ranges:      %d\n", m.EmptyRanges)
	fmt.Printf("scan abandonments: %d\n", m.ScanAbandonments)
	fmt.Printf("strategy switches: %d\n", m.StrategySwitches)
	fmt.Printf("races resolved:    %d\n", m.RacesResolved)
	fmt.Printf("borrow overflows:  %d\n", m.BorrowOverflows)
	fmt.Printf("cancelled:         %d\n", m.QueriesCancelled)
	fmt.Printf("deadline exceeded: %d\n", m.QueriesDeadlineExceeded)
	fmt.Printf("budget exceeded:   %d\n", m.QueriesBudgetExceeded)
	fmt.Printf("admission rejects: %d\n", m.AdmissionRejected)
	if m.JoinQueries > 0 {
		fmt.Printf("join queries:      %d (orders chosen: %d, re-optimizations: %d)\n",
			m.JoinQueries, m.JoinOrdersChosen, m.JoinReoptimizations)
		if m.JoinSortsAvoided > 0 {
			fmt.Printf("join sorts avoided: %d\n", m.JoinSortsAvoided)
		}
		if len(m.JoinOperatorWins) > 0 {
			fmt.Println("join operator wins:")
			for _, op := range []string{"nl", "inl", "ridx", "hj"} {
				if n := m.JoinOperatorWins[op]; n > 0 {
					fmt.Printf("  %-16s %d\n", op, n)
				}
			}
		}
	}
	if m.PlanCaptureRejected > 0 {
		fmt.Printf("capture rejects:   %d\n", m.PlanCaptureRejected)
	}
	if len(m.ParallelWidths) > 0 {
		fmt.Println("parallel widths chosen:")
		for _, bucket := range []string{"1", "2", "4", "8", "16", "32", "64"} {
			if n := m.ParallelWidths[bucket]; n > 0 {
				fmt.Printf("  %-8s %d\n", bucket, n)
			}
		}
		fmt.Printf("  early cancels:   %d\n", m.ParallelEarlyCancels)
		fmt.Printf("  seq downgrades:  %d\n", m.ParallelSeqDowngrades)
	}
	if len(m.TacticWins) > 0 {
		fmt.Println("tactic wins:")
		for _, tactic := range []string{"tscan", "sscan", "fscan", "background-only", "fast-first", "sorted", "index-only"} {
			if n := m.TacticWins[tactic]; n > 0 {
				fmt.Printf("  %-16s %d\n", tactic, n)
			}
		}
	}
	if len(m.EstimateErrorLog) > 0 {
		fmt.Println("estimate error (predicted/actual):")
		for _, bucket := range []string{"0-I/O", "<=1/8x", "1/4x", "1/2x", "~1x", "2x", "4x", ">=8x"} {
			if n := m.EstimateErrorLog[bucket]; n > 0 {
				fmt.Printf("  %-8s %d\n", bucket, n)
			}
		}
	}
}

func printCache(s engine.PlanCacheSnapshot) {
	if !s.Enabled {
		fmt.Println("plan cache disabled")
		return
	}
	fmt.Printf("entries: %d (frozen: %d)\n", s.Entries, s.Frozen)
	fmt.Printf("hits: %d  misses: %d  promotions: %d  demotions: %d  invalidations: %d\n",
		s.Hits, s.Misses, s.Promotions, s.Demotions, s.Invalidations)
	for _, e := range s.Plans {
		if e.Plan != "" {
			fmt.Printf("  frozen  %s\n          -> %s (baseline I/O %d)\n", e.Shape, e.Plan, e.BaselineIO)
		} else {
			fmt.Printf("  streak %d  %s\n", e.Streak, e.Shape)
		}
	}
}

func printFeedback(cs []feedback.Correction) {
	if cs == nil {
		fmt.Println("feedback disabled")
		return
	}
	if len(cs) == 0 {
		fmt.Println("no corrections learned yet")
		return
	}
	fmt.Println("correction factors (observed/estimated, EMA):")
	for _, c := range cs {
		target := c.Table
		if c.Index != "" {
			target += "." + c.Index
		}
		fmt.Printf("  %-28s card %.3fx (%d samples)  io %.3fx (%d samples)\n",
			target, c.Card, c.CardSamples, c.IO, c.IOSamples)
	}
}
