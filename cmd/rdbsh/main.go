// Command rdbsh is an interactive SQL shell over an in-memory database
// driven by the dynamic optimizer. It starts with the demo FAMILIES
// table loaded (100k rows, skewed CITY, indexes on AGE and CITY) so the
// paper's behaviors can be poked at directly.
//
//	$ rdbsh
//	rdb> SELECT COUNT(*) FROM FAMILIES WHERE AGE >= 9900
//	rdb> SELECT * FROM FAMILIES WHERE CITY = 0 LIMIT TO 5 ROWS
//	rdb> \stats        -- show the last statement's tactic, trace, and I/O
//	rdb> \set A1 9990  -- bind a host variable
//	rdb> SELECT * FROM FAMILIES WHERE AGE >= :A1 LIMIT 3
//	rdb> \quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rdbdyn/internal/core"
	"rdbdyn/internal/engine"
	"rdbdyn/internal/workload"
)

func main() {
	db := engine.Open(engine.Options{PoolFrames: 1024})
	spec := workload.TableSpec{
		Name: "FAMILIES",
		Rows: 100000,
		Columns: []workload.ColumnSpec{
			{Name: "ID", Gen: &workload.Seq{}},
			{Name: "AGE", Gen: workload.Uniform{Lo: 0, Hi: 10000}},
			{Name: "CITY", Gen: &workload.Zipf{S: 1.3, V: 1, N: 1000}},
			{Name: "PAD", Gen: workload.Pad{Len: 40}},
		},
		Indexes: [][]string{{"AGE"}, {"CITY"}},
		Seed:    1,
	}
	fmt.Println("loading demo FAMILIES table (100k rows, indexes on AGE and CITY)...")
	if _, err := workload.Build(db.Catalog(), spec); err != nil {
		fmt.Fprintln(os.Stderr, "rdbsh:", err)
		os.Exit(1)
	}
	fmt.Println(`ready. SQL statements end at newline; \help for commands.`)

	binds := engine.Binds{}
	var lastStats *core.RetrievalStats
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("rdb> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\help`:
			fmt.Println(`commands:
  \set NAME VALUE   bind a host variable (integer or 'string')
  \binds            show current bindings
  \stats            show the last statement's tactic, strategy, I/O, trace
  \metrics          show cumulative optimizer metrics (tactic wins, switches, estimate error)
  \quit             exit
EXPLAIN <select> describes the plan; EXPLAIN ANALYZE <select> executes it
and reports the typed competition events alongside.`)
		case line == `\binds`:
			for k, v := range binds {
				fmt.Printf("  :%s = %v\n", k, v)
			}
		case line == `\stats`:
			if lastStats == nil {
				fmt.Println("no statement has run yet")
				continue
			}
			printStats(*lastStats)
		case line == `\metrics`:
			printMetrics(db.Metrics())
		case strings.HasPrefix(line, `\set `):
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println(`usage: \set NAME VALUE`)
				continue
			}
			if v, err := strconv.ParseInt(parts[2], 10, 64); err == nil {
				binds[parts[1]] = v
			} else if f, err := strconv.ParseFloat(parts[2], 64); err == nil {
				binds[parts[1]] = f
			} else {
				binds[parts[1]] = strings.Trim(parts[2], "'")
			}
		case strings.HasPrefix(line, `\`):
			fmt.Println(`unknown command; \help for help`)
		default:
			up := strings.ToUpper(line)
			if strings.HasPrefix(up, "INSERT") || strings.HasPrefix(up, "DELETE") || strings.HasPrefix(up, "UPDATE") {
				n, err := db.Exec(line, binds)
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Printf("-- %d rows affected\n", n)
				continue
			}
			st, err := runSQL(db, line, binds)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			lastStats = st
		}
	}
}

func runSQL(db *engine.DB, src string, binds engine.Binds) (*core.RetrievalStats, error) {
	db.Pool().ResetStats()
	res, err := db.Query(src, binds)
	if err != nil {
		return nil, err
	}
	fmt.Println(strings.Join(res.Columns(), " | "))
	count := 0
	const maxShow = 25
	for {
		row, ok, err := res.Next()
		if err != nil {
			res.Close()
			return nil, err
		}
		if !ok {
			break
		}
		count++
		if count <= maxShow {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Println(strings.Join(cells, " | "))
		}
	}
	if count > maxShow {
		fmt.Printf("... (%d rows total)\n", count)
	}
	if err := res.Close(); err != nil {
		return nil, err
	}
	st := res.Stats()
	fmt.Printf("-- %d rows, tactic=%s, pool I/O: %s\n", count, st.Tactic, db.Pool().Stats())
	return &st, nil
}

func printStats(st core.RetrievalStats) {
	fmt.Printf("tactic:    %s\n", st.Tactic)
	fmt.Printf("strategy:  %s\n", st.Strategy)
	fmt.Printf("attributed I/O: %s (estimation: %d)\n", st.IO, st.EstimateIO)
	fmt.Printf("rows delivered: %d (foreground: %d, final list: %d)\n",
		st.RowsDelivered, st.FgRows, st.FinalListLen)
	for _, tr := range st.Trace {
		fmt.Println("  *", tr)
	}
}

func printMetrics(m core.MetricsSnapshot) {
	fmt.Printf("queries:           %d\n", m.Queries)
	fmt.Printf("empty ranges:      %d\n", m.EmptyRanges)
	fmt.Printf("scan abandonments: %d\n", m.ScanAbandonments)
	fmt.Printf("strategy switches: %d\n", m.StrategySwitches)
	fmt.Printf("races resolved:    %d\n", m.RacesResolved)
	fmt.Printf("borrow overflows:  %d\n", m.BorrowOverflows)
	if len(m.TacticWins) > 0 {
		fmt.Println("tactic wins:")
		for _, tactic := range []string{"tscan", "sscan", "fscan", "background-only", "fast-first", "sorted", "index-only"} {
			if n := m.TacticWins[tactic]; n > 0 {
				fmt.Printf("  %-16s %d\n", tactic, n)
			}
		}
	}
	if len(m.EstimateErrorLog) > 0 {
		fmt.Println("estimate error (predicted/actual):")
		for _, bucket := range []string{"<=1/8x", "1/4x", "1/2x", "~1x", "2x", "4x", ">=8x"} {
			if n := m.EstimateErrorLog[bucket]; n > 0 {
				fmt.Printf("  %-8s %d\n", bucket, n)
			}
		}
	}
}
