// Command rdbbench regenerates the retrieval experiments of the
// reproduction: every table-shaped result from the paper's Sections 3–7
// (see DESIGN.md for the experiment index).
//
// Usage:
//
//	rdbbench -exp all
//	rdbbench -exp hostvar -rows 100000
//	rdbbench -exp jscan
//
// Experiment IDs: competition, hostvar, estimate, jscan, background,
// fastfirst, sorted, indexonly, goals, hybrid, all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"rdbdyn/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (competition|hostvar|estimate|jscan|background|fastfirst|sorted|indexonly|goals|hybrid|union|ablations|interfere|histogram|samplers|all)")
	rows := flag.Int("rows", 0, "table size for retrieval experiments (0 = experiment default)")
	parallel := flag.Int("parallel", 0, "run the parallel-throughput benchmark with this many goroutines and write BENCH_parallel.json")
	queries := flag.Int("queries", 0, "total queries for -parallel (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchout := flag.String("benchout", "", "run the vectorized-pipeline microbenchmarks and write JSON results to this file (e.g. BENCH_pipeline.json)")
	cache := flag.Bool("cache", false, "run the plan-cache warm-vs-cold benchmark and write BENCH_cache.json")
	join := flag.Bool("join", false, "run the static-vs-dynamic join benchmark and write BENCH_join.json")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	if *benchout != "" {
		rep, err := bench.RunPipeline()
		if err != nil {
			fail(err)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*benchout, out, 0o644); err != nil {
			fail(err)
		}
		os.Stdout.Write(out)
		return
	}

	if *cache {
		res, err := bench.RunCacheBench(*rows)
		if err != nil {
			fail(err)
		}
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile("BENCH_cache.json", out, 0o644); err != nil {
			fail(err)
		}
		os.Stdout.Write(out)
		return
	}

	if *join {
		res, err := bench.RunJoinBench(*rows)
		if err != nil {
			fail(err)
		}
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile("BENCH_join.json", out, 0o644); err != nil {
			fail(err)
		}
		os.Stdout.Write(out)
		return
	}

	if *parallel > 0 {
		res, err := bench.RunParallel(*parallel, *queries, *rows)
		if err != nil {
			fail(err)
		}
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile("BENCH_parallel.json", out, 0o644); err != nil {
			fail(err)
		}
		metrics, err := json.MarshalIndent(res.Metrics, "", "  ")
		if err != nil {
			fail(err)
		}
		metrics = append(metrics, '\n')
		if err := os.WriteFile("BENCH_metrics.json", metrics, 0o644); err != nil {
			fail(err)
		}
		os.Stdout.Write(out)
		os.Stdout.Write(metrics)
		return
	}

	runners := map[string]func() (*bench.Report, error){
		"competition": bench.CompetitionCosts,
		"hostvar":     func() (*bench.Report, error) { return bench.HostVariable(*rows) },
		"estimate":    func() (*bench.Report, error) { return bench.EstimationStudy(*rows) },
		"jscan":       func() (*bench.Report, error) { return bench.JscanStudy(*rows) },
		"background":  func() (*bench.Report, error) { return bench.TacticBackground(*rows) },
		"fastfirst":   func() (*bench.Report, error) { return bench.TacticFastFirst(*rows) },
		"sorted":      func() (*bench.Report, error) { return bench.TacticSorted(*rows) },
		"indexonly":   func() (*bench.Report, error) { return bench.TacticIndexOnly(*rows) },
		"goals":       bench.GoalInference,
		"hybrid":      bench.HybridContainer,
		"union":       func() (*bench.Report, error) { return bench.UnionScan(*rows) },
		"ablations":   func() (*bench.Report, error) { return bench.Ablations(*rows) },
		"interfere":   func() (*bench.Report, error) { return bench.Interference(*rows) },
		"histogram":   func() (*bench.Report, error) { return bench.HistogramBaseline(*rows) },
		"samplers":    func() (*bench.Report, error) { return bench.SamplerComparison(*rows) },
	}
	if *exp == "all" {
		reports, err := bench.All()
		if err != nil {
			fail(err)
		}
		for _, r := range reports {
			r.Fprint(os.Stdout)
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fail(fmt.Errorf("unknown experiment %q", *exp))
	}
	r, err := run()
	if err != nil {
		fail(err)
	}
	r.Fprint(os.Stdout)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rdbbench:", err)
	os.Exit(1)
}
