// Analytics example: skewed data and multi-index restrictions — the
// conditions Section 2 says defeat static cost estimation. The CITY
// column is Zipf-distributed, so the same "CITY = :C" predicate matches
// 30% of the table for the hot city and a handful of rows for a cold
// one; the REGION column is correlated with CITY, so intersecting both
// indexes is sometimes useless. The dynamic optimizer sorts it out at
// run time, query by query.
package main

import (
	"fmt"
	"log"

	"rdbdyn/internal/engine"
	"rdbdyn/internal/workload"
)

func main() {
	db := engine.Open(engine.Options{PoolFrames: 512})
	spec := workload.TableSpec{
		Name: "EVENTS",
		Rows: 100000,
		Columns: []workload.ColumnSpec{
			{Name: "ID", Gen: &workload.Seq{}},
			{Name: "CITY", Gen: &workload.Zipf{S: 1.4, V: 1, N: 2000}},
			{Name: "REGION", Gen: workload.Correlated{Source: 1, Noise: 2}},
			{Name: "DAY", Gen: workload.Uniform{Lo: 0, Hi: 365}},
			{Name: "PAD", Gen: workload.Pad{Len: 40}},
		},
		Indexes: [][]string{{"CITY"}, {"REGION"}, {"DAY"}},
		Seed:    3,
	}
	if _, err := workload.Build(db.Catalog(), spec); err != nil {
		log.Fatal(err)
	}

	stmt, err := db.Prepare("SELECT COUNT(*) FROM EVENTS WHERE CITY = :C")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- Zipf skew: the same predicate, wildly different volumes --")
	for _, c := range []int{0, 1, 50, 1500} {
		db.Pool().EvictAll()
		db.Pool().ResetStats()
		res, err := stmt.Query(engine.Binds{"C": c})
		if err != nil {
			log.Fatal(err)
		}
		rows, err := res.All()
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats()
		fmt.Printf("CITY=%5d -> count=%-6s tactic=%-16s strategy=%-35s I/O=%d\n",
			c, rows[0][0], st.Tactic, st.Strategy, db.Pool().Stats().IOCost())
	}

	fmt.Println("\n-- correlated conjuncts: the REGION index cannot shrink CITY's RID list --")
	multi, err := db.Prepare("SELECT COUNT(*) FROM EVENTS WHERE CITY = :C AND REGION >= :R1 AND REGION <= :R2 AND DAY < :D")
	if err != nil {
		log.Fatal(err)
	}
	for _, tc := range []struct {
		c, r1, r2, d int
		label        string
	}{
		{42, 40, 44, 365, "wide DAY: useless third index"},
		{42, 40, 44, 30, "narrow DAY: intersection helps"},
		{0, 0, 2, 365, "hot city: sequential wins"},
	} {
		db.Pool().EvictAll()
		db.Pool().ResetStats()
		res, err := multi.Query(engine.Binds{"C": tc.c, "R1": tc.r1, "R2": tc.r2, "D": tc.d})
		if err != nil {
			log.Fatal(err)
		}
		rows, err := res.All()
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats()
		fmt.Printf("%-34s count=%-6s strategy=%-42s I/O=%d\n",
			tc.label, rows[0][0], st.Strategy, db.Pool().Stats().IOCost())
		for _, tr := range st.Trace {
			fmt.Println("    *", tr)
		}
	}
}
