// OLTP example: the short-transaction behaviors the paper's Section 5
// optimizes for. Point lookups shortcut the initial estimation the
// moment a very short range is discovered, empty ranges deliver "end of
// data" without touching any productive stage, and LIMIT queries get
// the fast-first goal automatically.
package main

import (
	"fmt"
	"log"

	"rdbdyn/internal/engine"
	"rdbdyn/internal/workload"
)

func main() {
	db := engine.Open(engine.Options{PoolFrames: 512})
	spec := workload.TableSpec{
		Name: "ORDERS",
		Rows: 80000,
		Columns: []workload.ColumnSpec{
			{Name: "ORDER_ID", Gen: &workload.Seq{}},
			{Name: "CUSTOMER", Gen: workload.Uniform{Lo: 0, Hi: 20000}},
			{Name: "STATUS", Gen: workload.Uniform{Lo: 0, Hi: 5}},
			{Name: "AMOUNT", Gen: workload.UniformFloat{Lo: 1, Hi: 5000}},
		},
		Indexes: [][]string{{"ORDER_ID"}, {"CUSTOMER"}},
		Seed:    7,
	}
	if _, err := workload.Build(db.Catalog(), spec); err != nil {
		log.Fatal(err)
	}

	run := func(label, src string, binds engine.Binds) {
		db.Pool().ResetStats()
		res, err := db.Query(src, binds)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := res.All()
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats()
		fmt.Printf("%-28s %5d rows  tactic=%-13s estI/O=%-3d total pool I/O=%d\n",
			label, len(rows), st.Tactic, st.EstimateIO, db.Pool().Stats().IOCost())
	}

	// Point lookup: the initial stage discovers a 1-RID range on the
	// first index probe and terminates estimation immediately.
	run("point lookup", "SELECT * FROM ORDERS WHERE ORDER_ID = :ID", engine.Binds{"ID": 41234})

	// Empty range: "end of data" at once, no retrieval stages run.
	run("empty range", "SELECT * FROM ORDERS WHERE ORDER_ID = :ID", engine.Binds{"ID": 999999999})

	// Customer history with LIMIT: fast-first goal inferred from the
	// controlling LIMIT node.
	run("recent orders (LIMIT 5)",
		"SELECT ORDER_ID, AMOUNT FROM ORDERS WHERE CUSTOMER = :C LIMIT TO 5 ROWS",
		engine.Binds{"C": 777})

	// A contradictory restriction is proven empty syntactically.
	run("contradiction", "SELECT * FROM ORDERS WHERE ORDER_ID > 10 AND ORDER_ID < 5", nil)

	// Repeated short transactions: the winning index order is reused as
	// the next run's starting point (watch estimation I/O stay tiny).
	for i := 0; i < 3; i++ {
		run(fmt.Sprintf("hot path, run %d", i+1),
			"SELECT * FROM ORDERS WHERE CUSTOMER = :C AND ORDER_ID >= :LO",
			engine.Binds{"C": 123, "LO": 100})
	}
}
