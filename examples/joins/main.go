// Joins: a multi-table retrieval under the dynamic optimizer. The
// local restriction on CUST is unsargable, so planning falls back to
// the classic 10% guess — but SEG = 0 really covers 60% of the table.
// The greedy plan sizes an index-nested-loop probe for ~20 outer rows,
// meets ~120 at the first stage boundary, re-plans the remaining
// stages mid-flight, and finishes on a hash join: the build scan costs
// what a nested loop's would, but the probe phase is linear.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/engine"
	"rdbdyn/internal/expr"
)

func main() {
	db := engine.Open(engine.Options{PoolFrames: 128})

	if _, err := db.CreateTable("CUST",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "SEG", Type: expr.TypeInt},
		catalog.Column{Name: "NAME", Type: expr.TypeString},
	); err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateTable("ORD",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "CUST", Type: expr.TypeInt},
		catalog.Column{Name: "QTY", Type: expr.TypeInt},
		catalog.Column{Name: "PAD", Type: expr.TypeString},
	); err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateIndex("ORD", "ORD_CUST_IX", "CUST"); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		seg := int(rng.Int63n(10)) // 60% of customers sit in segment 0
		if seg < 6 {
			seg = 0
		}
		if err := db.Insert("CUST", i, seg, fmt.Sprintf("c%03d", i)); err != nil {
			log.Fatal(err)
		}
	}
	pad := strings.Repeat("x", 400)
	for i := 0; i < 3000; i++ {
		if err := db.Insert("ORD", i, int(rng.Int63n(200)), 1+int(rng.Int63n(9)), pad); err != nil {
			log.Fatal(err)
		}
	}

	const q = "SELECT CUST.NAME, ORD.QTY FROM CUST JOIN ORD ON CUST.ID = ORD.CUST WHERE SEG = 0"

	res, err := db.Query("EXPLAIN ANALYZE "+q, nil)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := res.All()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EXPLAIN ANALYZE", q)
	for _, r := range rows {
		fmt.Printf("  %-28s %s\n", r[0].S, r[1].S)
	}

	res, err = db.Query(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	all, err := res.All()
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats()
	fmt.Printf("\n%d rows via %s (attributed I/O %d)\n", len(all), st.Strategy, st.IO.IOCost())
	m := db.Metrics()
	fmt.Printf("metrics: %d join queries, %d re-optimizations, capture rejects %d\n",
		m.JoinQueries, m.JoinReoptimizations, m.PlanCaptureRejected)
}
