// Quickstart: create a table, index it, load rows, and run the same
// prepared query under the dynamic optimizer with two very different
// host-variable values — the paper's Section 4 example.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rdbdyn/internal/catalog"
	"rdbdyn/internal/engine"
	"rdbdyn/internal/expr"
)

func main() {
	db := engine.Open(engine.Options{PoolFrames: 512})

	if _, err := db.CreateTable("FAMILIES",
		catalog.Column{Name: "ID", Type: expr.TypeInt},
		catalog.Column{Name: "AGE", Type: expr.TypeInt},
		catalog.Column{Name: "NAME", Type: expr.TypeString},
	); err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateIndex("FAMILIES", "AGE_IX", "AGE"); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		if err := db.Insert("FAMILIES", i, int(rng.Int63n(200)), fmt.Sprintf("family-%05d", i)); err != nil {
			log.Fatal(err)
		}
	}

	// The paper: "select * from FAMILIES where AGE >= :A1" with :A1
	// taking values 0 and 200, delivering all or no records in two
	// different runs. A correct choice between the sequential and index
	// strategies can only be done dynamically on a per-run basis.
	stmt, err := db.Prepare("SELECT ID, AGE FROM FAMILIES WHERE AGE >= :A1")
	if err != nil {
		log.Fatal(err)
	}
	for _, a1 := range []int{198, 0, 200} {
		db.Pool().EvictAll()
		db.Pool().ResetStats()
		res, err := stmt.Query(engine.Binds{"A1": a1})
		if err != nil {
			log.Fatal(err)
		}
		rows, err := res.All()
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats()
		fmt.Printf("A1=%3d -> %5d rows, tactic=%-15s strategy=%-40s I/O=%d\n",
			a1, len(rows), st.Tactic, st.Strategy, db.Pool().Stats().IOCost())
	}
	fmt.Println("\nthe same prepared statement chose different strategies per run — no plan was frozen.")
}
