// Tactics tour: drives each of the paper's four competition tactics
// (Section 7) and prints the executor's decision trace so the
// foreground/background choreography is visible.
package main

import (
	"fmt"
	"log"

	"rdbdyn/internal/engine"
	"rdbdyn/internal/workload"
)

func main() {
	db := engine.Open(engine.Options{PoolFrames: 512})
	spec := workload.TableSpec{
		Name: "T",
		Rows: 60000,
		Columns: []workload.ColumnSpec{
			{Name: "A", Gen: workload.Uniform{Lo: 0, Hi: 10000}},
			{Name: "B", Gen: workload.Uniform{Lo: 0, Hi: 10000}},
			{Name: "PAD", Gen: workload.Pad{Len: 50}},
		},
		Indexes: [][]string{{"A"}, {"B"}, {"A", "B"}},
		Seed:    5,
	}
	if _, err := workload.Build(db.Catalog(), spec); err != nil {
		log.Fatal(err)
	}

	show := func(title, src string, limit int) {
		fmt.Printf("\n=== %s ===\n%s\n", title, src)
		db.Pool().EvictAll()
		db.Pool().ResetStats()
		res, err := db.Query(src, nil)
		if err != nil {
			log.Fatal(err)
		}
		count := 0
		for {
			_, ok, err := res.Next()
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				break
			}
			count++
			if limit > 0 && count >= limit {
				break
			}
		}
		if err := res.Close(); err != nil {
			log.Fatal(err)
		}
		st := res.Stats()
		fmt.Printf("tactic=%s strategy=%s rows=%d I/O=%d\n",
			st.Tactic, st.Strategy, count, db.Pool().Stats().IOCost())
		for _, tr := range st.Trace {
			fmt.Println("  *", tr)
		}
	}

	// Background-only: total time over fetch-needed indexes.
	show("background-only (Section 7)",
		"SELECT * FROM T WHERE A < 300 AND B < 4000 OPTIMIZE FOR TOTAL TIME", 0)

	// Fast-first: the foreground borrows RIDs from Jscan and the caller
	// stops after a handful of rows.
	show("fast-first, early termination",
		"SELECT * FROM T WHERE A < 300 OPTIMIZE FOR FAST FIRST", 5)

	// Fast-first drained to the end: the background finishes the job.
	show("fast-first, drained to the end",
		"SELECT * FROM T WHERE A < 300 OPTIMIZE FOR FAST FIRST", 0)

	// Sorted: an order-delivering Fscan cooperating with a
	// filter-producing Jscan.
	show("sorted tactic",
		"SELECT * FROM T WHERE A >= 0 AND B < 200 ORDER BY A OPTIMIZE FOR FAST FIRST", 0)

	// Index-only: the covering A+B index races the B index's Jscan.
	show("index-only tactic",
		"SELECT A, B FROM T WHERE A < 9000 AND B < 50 OPTIMIZE FOR TOTAL TIME", 0)

	// And the degenerate static cases for contrast.
	show("statically clear: no useful index -> Tscan",
		"SELECT * FROM T WHERE PAD = 'nope'", 0)
	show("statically clear: lone covering index -> Sscan",
		"SELECT A, B FROM T WHERE A < 100", 0)
}
